// Package daemon is the online Sunflow scheduler service behind cmd/sunflowd:
// a long-running process that accepts Coflow registrations and
// completion/fault events over HTTP, maintains one live Port Reservation
// Table, and replans incrementally on every accepted event instead of
// rescheduling a batch trace from scratch.
//
// The package is split along a strict determinism boundary:
//
//   - Engine (this file) is a pure state machine over logical time: applying
//     an event sequence is a deterministic function of (EngineConfig, events),
//     with every schedule decision folded into a running SHA-256 digest.
//     Nothing in the Engine reads the wall clock.
//   - WAL and snapshot (wal.go, store.go) persist the accepted event sequence
//     and checkpoints of Engine state, so a crash recovers to bit-identical
//     schedules — the property test in recovery_test.go and the kill -9 smoke
//     in cmd/sunflowd-smoke enforce it.
//   - Daemon (daemon.go, http.go) wraps the Engine with the wall-clock
//     concerns of a service: admission control, request deadlines, retries,
//     watchdog, drain.
//
// Engine semantics deliberately mirror internal/sim's circuit simulator: a
// stream of register events replayed through an Engine yields Coflow
// completion times bit-identical to sim.RunCircuit on the same workload
// (engine_test.go proves it), so the daemon inherits the simulator's heavily
// property-tested scheduling behavior.
package daemon

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/fabric"
	"sunflow/internal/obs"
)

// timeEps and byteEps match the simulators' comparison epsilons.
const (
	timeEps = 1e-9
	byteEps = 1.0
)

// maxSteps bounds one advanceTo's internal completion/outage loop, turning a
// runaway replan cycle into an error the watchdog can surface instead of a
// wedged event loop.
const maxSteps = 10_000_000

// EventKind discriminates WAL records and API requests.
type EventKind string

// Event kinds accepted by the Engine.
const (
	// KindRegister admits a new Coflow at time At.
	KindRegister EventKind = "register"
	// KindAdvance moves logical time forward to At, crediting planned
	// delivery and retiring Coflows whose demand drains on the way.
	KindAdvance EventKind = "advance"
	// KindComplete force-completes a Coflow at At — the fabric (or operator)
	// declaring it done regardless of the plan.
	KindComplete EventKind = "complete"
	// KindFault declares a port outage starting at At for Duration seconds
	// (Duration <= 0 means permanent).
	KindFault EventKind = "fault"
)

// FlowSpec is one flow of a registration.
type FlowSpec struct {
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Bytes float64 `json:"bytes"`
}

// Event is one accepted daemon input: the WAL record, the HTTP request body
// and the Engine transition are all this struct. At is logical time in
// seconds; events whose At precedes the Engine clock are applied "late" at
// the current clock (the At still counts as the Coflow's arrival for CCT).
type Event struct {
	// Seq is the WAL sequence number, assigned at admission; zero in request
	// bodies.
	Seq uint64 `json:"seq,omitempty"`
	// Kind selects the transition.
	Kind EventKind `json:"kind"`
	// At is the event's logical time.
	At float64 `json:"at"`
	// Coflow identifies the Coflow for register/complete.
	Coflow int `json:"coflow"`
	// Priority is the operator override for register: live Coflows are served
	// in strictly descending Priority, shortest-first within a class. Zero is
	// the default class.
	Priority int `json:"priority,omitempty"`
	// Flows is the registered demand.
	Flows []FlowSpec `json:"flows,omitempty"`
	// Port and Duration describe a fault.
	Port     int     `json:"port"`
	Duration float64 `json:"duration,omitempty"`
}

// Deterministic apply rejections. They are part of the state machine: a
// rejected event leaves the Engine unchanged and rejects identically when the
// WAL replays it after a crash.
var (
	// ErrBadEvent rejects malformed events (unknown kind, bad times, ports
	// outside the fabric, negative demand).
	ErrBadEvent = errors.New("daemon: bad event")
	// ErrDuplicateCoflow rejects re-registering an id with different content.
	// Identical re-registration is idempotent and accepted.
	ErrDuplicateCoflow = errors.New("daemon: coflow id already registered with different content")
	// ErrUnknownCoflow rejects completing an id never registered.
	ErrUnknownCoflow = errors.New("daemon: unknown coflow")
)

// EngineConfig fixes the fabric and scheduling parameters of an Engine. It
// must be identical across restarts of one data directory; Store guards this
// with a config fingerprint in the snapshot.
type EngineConfig struct {
	// Ports is the switch port count N.
	Ports int `json:"ports"`
	// LinkBps is the per-port bandwidth B in bits/s.
	LinkBps float64 `json:"link_bps"`
	// Delta is the circuit reconfiguration delay δ in seconds.
	Delta float64 `json:"delta"`
	// Order is the intra-Coflow reservation ordering.
	Order core.Order `json:"order"`
	// Seed drives RandomOrder.
	Seed int64 `json:"seed"`
	// FullReplan disables dirty-prefix schedule reuse, forcing every replan
	// to invoke the intra scheduler for every live Coflow (DESIGN.md §7).
	// Schedules are bit-identical either way — the differential property
	// tests pin it — so this is a debugging/benchmarking knob, not part of
	// the config identity snapshots are checked against. The
	// SUNFLOW_FULL_REPLAN environment variable forces it process-wide.
	FullReplan bool `json:"full_replan,omitempty"`
}

// Validate reports an error for non-physical parameters.
func (c EngineConfig) Validate() error {
	if c.Ports <= 0 {
		return fmt.Errorf("daemon: fabric must have at least one port, got %d", c.Ports)
	}
	if c.LinkBps <= 0 {
		return fmt.Errorf("daemon: link bandwidth must be positive, got %v", c.LinkBps)
	}
	if c.Delta < 0 || math.IsNaN(c.Delta) {
		return fmt.Errorf("daemon: reconfiguration delay must be non-negative, got %v", c.Delta)
	}
	return nil
}

// Completion records one finished Coflow.
type Completion struct {
	Arrival float64 `json:"arrival"`
	Finish  float64 `json:"finish"`
	CCT     float64 `json:"cct"`
	// Switches counts the circuit establishments the Coflow paid.
	Switches int `json:"switches"`
	// Stranded marks a Coflow that lost flows to a permanent port failure:
	// its routable demand drained but Bytes of it never will.
	Stranded bool    `json:"stranded,omitempty"`
	Bytes    float64 `json:"stranded_bytes,omitempty"`
	// Forced marks an external KindComplete rather than a planned drain.
	Forced bool `json:"forced,omitempty"`
	// SpecHash fingerprints the registration (priority and flows) so a
	// re-registration of a finished id is accepted as idempotent only when it
	// matches what was actually registered, not on arrival time alone.
	SpecHash string `json:"spec_hash,omitempty"`
}

// liveEntry tracks one registered, unfinished Coflow.
type liveEntry struct {
	id       int
	arrival  float64
	priority int
	// spec keeps the registered flows so duplicate registrations can be
	// recognized as idempotent; specHash is its fingerprint, carried into the
	// Completion for the same check after the Coflow finishes.
	spec     []FlowSpec
	specHash string
	// rem is the unserved demand per flow in bytes, including demand that
	// in-flight reservations will deliver.
	rem map[fabric.FlowKey]float64
	// keys holds rem's keys in (Src, Dst) order, fixed at registration;
	// stranding deletes rem entries without touching keys, so readers skip
	// keys absent from rem.
	keys []fabric.FlowKey
	// base is the drift-free scheduler view of the demand: nil until the
	// Coflow's first in-flight byte, then a snapshot of rem debited only by
	// the exact planned bytes of circuits as they end — never by the
	// continuous crediting that makes rem drift. Scheduler input is base
	// minus the full planned bytes of in-flight circuits, so it is bit-stable
	// while a circuit holds. Mirrors the simulator's liveCoflow.base.
	base map[fabric.FlowKey]float64
	// flowFinish records actual flow completion instants.
	flowFinish map[fabric.FlowKey]float64
	// finish is the planned completion time under the current plan.
	finish float64
	// switches counts circuit establishments paid so far.
	switches int
	// stranded marks a Coflow that lost flows to a permanent failure.
	stranded bool
	// strandedBytes accumulates the demand those flows could not deliver.
	strandedBytes float64
}

// outage is one declared port downtime window; End is +Inf when permanent.
type outage struct {
	Port  int     `json:"port"`
	Start float64 `json:"start"`
	End   float64 `json:"end"` // encoded as -1 for permanent in JSON; see store.go
}

func (o outage) permanent() bool { return math.IsInf(o.End, 1) }

// Engine is the deterministic scheduling state machine. It is not safe for
// concurrent use; the Daemon serializes access through its event loop.
type Engine struct {
	cfg EngineConfig
	now float64
	// live holds registered, unfinished Coflows by id.
	live map[int]*liveEntry
	// plan holds all reservations not yet fully credited: circuits in flight
	// plus the planned future.
	plan []core.Reservation
	// outages lists declared fault windows in acceptance order.
	outages []outage
	// done maps finished Coflow ids to their completion records.
	done map[int]Completion
	// digest chains a SHA-256 over every applied event and the plan it
	// produced — the bit-identity fingerprint crash recovery is checked
	// against.
	digest [sha256.Size]byte
	// replans counts scheduling passes (exposed for status; also folded into
	// nothing — wall-clock-free).
	replans uint64
	// prt is the reservation table rebuilt by every replan; reused across
	// passes so replanning is allocation-free on the timelines.
	prt *core.PRT
	// incremental enables dirty-prefix schedule reuse while the fabric is
	// fault-free (outages force the full rebuild); fixed at construction
	// from the config and the SUNFLOW_FULL_REPLAN environment variable.
	incremental bool
	// cache holds the previous pass's per-Coflow schedules in policy order.
	cache []planCacheEntry
	// scratch pools the per-pass replan allocations.
	scratch replanScratch
	// obs optionally records scheduler metrics; it must never influence
	// state (the recovery property test runs with and without it).
	obs *obs.Observer
}

// NewEngine returns an empty Engine for the fabric.
func NewEngine(cfg EngineConfig, o *obs.Observer) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:         cfg,
		live:        map[int]*liveEntry{},
		done:        map[int]Completion{},
		prt:         core.NewPRT(cfg.Ports),
		obs:         o,
		incremental: !cfg.FullReplan && os.Getenv("SUNFLOW_FULL_REPLAN") == "",
	}, nil
}

// Now returns the Engine's logical clock.
func (e *Engine) Now() float64 { return e.now }

// LiveCount returns the number of registered, unfinished Coflows.
func (e *Engine) LiveCount() int { return len(e.live) }

// DoneCount returns the number of finished Coflows.
func (e *Engine) DoneCount() int { return len(e.done) }

// Replans returns the number of scheduling passes run.
func (e *Engine) Replans() uint64 { return e.replans }

// Digest returns the hex SHA-256 chain over every applied event and the
// schedule it produced. Two Engines that applied the same event sequence —
// one of them through a crash and recovery — report identical digests.
func (e *Engine) Digest() string { return hex.EncodeToString(e.digest[:]) }

// Completions returns a copy of the finished-Coflow records.
func (e *Engine) Completions() map[int]Completion {
	out := make(map[int]Completion, len(e.done))
	for id, c := range e.done {
		out[id] = c
	}
	return out
}

// Completion returns one Coflow's record.
func (e *Engine) Completion(id int) (Completion, bool) {
	c, ok := e.done[id]
	return c, ok
}

// Plan returns a copy of the current reservation plan, sorted by start time.
func (e *Engine) Plan() []core.Reservation {
	out := append([]core.Reservation(nil), e.plan...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// LiveStatus is one live Coflow's externally visible state.
type LiveStatus struct {
	Coflow         int     `json:"coflow"`
	Arrival        float64 `json:"arrival"`
	Priority       int     `json:"priority,omitempty"`
	RemainingBytes float64 `json:"remaining_bytes"`
	PlannedFinish  float64 `json:"planned_finish"`
	Stranded       bool    `json:"stranded,omitempty"`
}

// Live returns the live set sorted by id.
func (e *Engine) Live() []LiveStatus {
	out := make([]LiveStatus, 0, len(e.live))
	for _, id := range sortedIDs(e.live) {
		lc := e.live[id]
		rem := 0.0
		for _, b := range lc.rem {
			rem += b
		}
		out = append(out, LiveStatus{
			Coflow: id, Arrival: lc.arrival, Priority: lc.priority,
			RemainingBytes: rem, PlannedFinish: lc.finish, Stranded: lc.stranded,
		})
	}
	return out
}

// validate rejects malformed events before any state is touched, so a
// rejection is side-effect free and replays identically.
func (e *Engine) validate(ev Event) error {
	if math.IsNaN(ev.At) || math.IsInf(ev.At, 0) || ev.At < 0 {
		return fmt.Errorf("%w: invalid time %v", ErrBadEvent, ev.At)
	}
	switch ev.Kind {
	case KindRegister:
		for i, f := range ev.Flows {
			if f.Src < 0 || f.Src >= e.cfg.Ports || f.Dst < 0 || f.Dst >= e.cfg.Ports {
				return fmt.Errorf("%w: flow %d ports (%d,%d) outside [0,%d)", ErrBadEvent, i, f.Src, f.Dst, e.cfg.Ports)
			}
			if math.IsNaN(f.Bytes) || math.IsInf(f.Bytes, 0) || f.Bytes < 0 {
				return fmt.Errorf("%w: flow %d has invalid size %v", ErrBadEvent, i, f.Bytes)
			}
		}
	case KindAdvance:
		// Nothing beyond the time check.
	case KindComplete:
		// Nothing beyond the time check.
	case KindFault:
		if ev.Port < 0 || ev.Port >= e.cfg.Ports {
			return fmt.Errorf("%w: fault names port %d outside [0,%d)", ErrBadEvent, ev.Port, e.cfg.Ports)
		}
		if math.IsNaN(ev.Duration) {
			return fmt.Errorf("%w: fault has NaN duration", ErrBadEvent)
		}
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrBadEvent, ev.Kind)
	}
	return nil
}

// Apply runs one event through the state machine. It returns whether the
// event changed state (false for idempotent duplicates) and a deterministic
// error for rejections; on error the Engine is unchanged except that the
// rejection itself is folded into the digest (a replayed WAL re-rejects
// identically, so recovery stays aligned).
func (e *Engine) Apply(ev Event) (applied bool, err error) {
	if err := e.validate(ev); err != nil {
		e.foldDigest(ev, false)
		return false, err
	}
	switch ev.Kind {
	case KindRegister:
		applied, err = e.applyRegister(ev)
	case KindAdvance:
		applied, err = true, e.advanceTo(ev.At)
	case KindComplete:
		applied, err = e.applyComplete(ev)
	case KindFault:
		applied, err = e.applyFault(ev)
	}
	e.foldDigest(ev, applied)
	return applied, err
}

func (e *Engine) applyRegister(ev Event) (bool, error) {
	hash := hashSpec(ev.Priority, ev.Flows)
	if lc, ok := e.live[ev.Coflow]; ok {
		if sameSpec(lc.spec, ev.Flows) && lc.arrival == ev.At && lc.priority == ev.Priority {
			return false, nil // client retry of an acked registration
		}
		return false, fmt.Errorf("%w: id %d", ErrDuplicateCoflow, ev.Coflow)
	}
	if done, ok := e.done[ev.Coflow]; ok {
		if done.Arrival == ev.At && done.SpecHash == hash {
			return false, nil // client retry of a registration that already finished
		}
		return false, fmt.Errorf("%w: id %d already completed", ErrDuplicateCoflow, ev.Coflow)
	}
	if err := e.advanceTo(math.Max(ev.At, e.now)); err != nil {
		return false, err
	}
	rem := make(map[fabric.FlowKey]float64, len(ev.Flows))
	for _, f := range ev.Flows {
		if f.Bytes > 0 {
			rem[fabric.FlowKey{Src: f.Src, Dst: f.Dst}] += f.Bytes
		}
	}
	if len(rem) == 0 {
		// Zero-demand Coflows complete instantly, like the simulator.
		e.done[ev.Coflow] = Completion{Arrival: ev.At, Finish: ev.At, CCT: 0, SpecHash: hash}
		return true, nil
	}
	keys := make([]fabric.FlowKey, 0, len(rem))
	for k := range rem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Src != keys[b].Src {
			return keys[a].Src < keys[b].Src
		}
		return keys[a].Dst < keys[b].Dst
	})
	e.live[ev.Coflow] = &liveEntry{
		id:         ev.Coflow,
		arrival:    ev.At,
		priority:   ev.Priority,
		spec:       append([]FlowSpec(nil), ev.Flows...),
		specHash:   hash,
		rem:        rem,
		keys:       keys,
		flowFinish: make(map[fabric.FlowKey]float64, len(rem)),
		finish:     math.Inf(1),
	}
	if o := e.obs; o != nil {
		o.CoflowsAdmitted.Inc()
	}
	return true, e.replan(e.now)
}

func (e *Engine) applyComplete(ev Event) (bool, error) {
	lc, ok := e.live[ev.Coflow]
	if !ok {
		if _, done := e.done[ev.Coflow]; done {
			return false, nil // already finished: idempotent
		}
		return false, fmt.Errorf("%w: id %d", ErrUnknownCoflow, ev.Coflow)
	}
	if err := e.advanceTo(math.Max(ev.At, e.now)); err != nil {
		return false, err
	}
	// The advance may have drained it on plan; then the external completion
	// arrives after the fact and is a no-op.
	if _, still := e.live[ev.Coflow]; !still {
		return false, nil
	}
	finish := e.now
	e.done[ev.Coflow] = Completion{
		Arrival:  lc.arrival,
		Finish:   finish,
		CCT:      finish - lc.arrival,
		Switches: lc.switches,
		Stranded: lc.stranded,
		Bytes:    lc.strandedBytes,
		Forced:   true,
		SpecHash: lc.specHash,
	}
	delete(e.live, ev.Coflow)
	if o := e.obs; o != nil {
		o.CoflowsCompleted.Inc()
	}
	return true, e.replan(e.now)
}

func (e *Engine) applyFault(ev Event) (bool, error) {
	if err := e.advanceTo(math.Max(ev.At, e.now)); err != nil {
		return false, err
	}
	end := math.Inf(1)
	if ev.Duration > 0 && !math.IsInf(ev.Duration, 1) {
		end = ev.At + ev.Duration
	}
	og := outage{Port: ev.Port, Start: ev.At, End: end}
	e.outages = append(e.outages, og)
	// Outages gate off the incremental path for good; drop the cache so it
	// does not pin retired schedules.
	e.cache = nil
	if o := e.obs; o != nil {
		o.PortDowns.Inc()
	}
	if og.Start <= e.now+timeEps && og.End > e.now+timeEps {
		// The port is down as of now: circuits in flight across it release
		// immediately and their undelivered capacity returns to the planner.
		e.truncatePort(ev.Port, e.now)
	}
	e.quarantine(e.now)
	e.retire(e.now)
	return true, e.replan(e.now)
}

// advanceTo moves logical time to t, processing every planned completion and
// outage edge on the way exactly like the simulator's event loop: credit the
// plan up to the event instant, truncate circuits on failing ports, retire
// drained Coflows, replan.
func (e *Engine) advanceTo(t float64) error {
	for step := 0; ; step++ {
		if step > maxSteps {
			return fmt.Errorf("daemon: advance exceeded %d internal events at t=%.6f", maxSteps, e.now)
		}
		te := math.Inf(1)
		for _, lc := range e.live {
			te = math.Min(te, lc.finish)
		}
		te = math.Min(te, e.nextOutageBoundary(e.now))
		if math.IsInf(te, 1) || te > t+timeEps {
			break
		}
		e.credit(e.now, te)
		for _, og := range e.outages {
			if math.Abs(og.Start-te) <= timeEps {
				e.truncatePort(og.Port, te)
			}
		}
		e.quarantine(te)
		e.retire(te)
		if err := e.replan(te); err != nil {
			return err
		}
		e.now = te
	}
	if t > e.now {
		e.credit(e.now, t)
		e.now = t
	}
	return nil
}

// credit applies all planned transmission occurring in [from, to), mirroring
// the simulator's crediting pass.
func (e *Engine) credit(from, to float64) {
	if to <= from {
		return
	}
	sort.Slice(e.plan, func(a, b int) bool { return e.plan[a].Start < e.plan[b].Start })
	o := e.obs
	for idx := range e.plan {
		r := &e.plan[idx]
		lc := e.live[r.CoflowID]
		if r.Start >= from-timeEps && r.Start < to-timeEps {
			if lc != nil {
				lc.switches++
			}
			if o != nil {
				o.CircuitSetups.Inc()
				o.SetupSeconds.Add(r.Setup)
				o.HoldSeconds.Add(r.End - r.Start)
				o.PlannedBytes.Add(r.Bytes)
			}
		}
		if lc == nil {
			continue
		}
		d := r.TransmittedBy(to, e.cfg.LinkBps) - r.TransmittedBy(from, e.cfg.LinkBps)
		if d <= 0 {
			continue
		}
		key := fabric.FlowKey{Src: r.In, Dst: r.Out}
		rem := lc.rem[key]
		if rem <= 0 {
			continue
		}
		if lc.base == nil {
			// First in-flight byte for this Coflow: snapshot the pristine
			// demand before rem starts drifting away from it.
			lc.base = make(map[fabric.FlowKey]float64, len(lc.rem))
			for k, v := range lc.rem {
				lc.base[k] = v
			}
		}
		if o != nil {
			o.BytesDelivered.Add(math.Min(rem, d))
		}
		if rem <= d+byteEps {
			// The flow drains inside this reservation; solve for the instant.
			deliveryStart := math.Max(from, r.TransmitStart())
			finish := deliveryStart + rem*8/e.cfg.LinkBps
			lc.rem[key] = 0
			if _, done := lc.flowFinish[key]; !done {
				lc.flowFinish[key] = finish
			}
		} else {
			lc.rem[key] = rem - d
		}
	}
}

// retire records Coflows whose demand has fully drained, in id order for
// deterministic completion records.
func (e *Engine) retire(now float64) {
	for _, id := range sortedIDs(e.live) {
		lc := e.live[id]
		done := true
		for _, b := range lc.rem {
			if b > byteEps {
				done = false
				break
			}
		}
		if !done {
			continue
		}
		finish := 0.0
		for _, f := range lc.flowFinish {
			finish = math.Max(finish, f)
		}
		if finish == 0 {
			finish = now
		}
		e.done[id] = Completion{
			Arrival:  lc.arrival,
			Finish:   finish,
			CCT:      finish - lc.arrival,
			Switches: lc.switches,
			Stranded: lc.stranded,
			Bytes:    lc.strandedBytes,
			SpecHash: lc.specHash,
		}
		delete(e.live, id)
		if o := e.obs; o != nil {
			o.CoflowsCompleted.Inc()
		}
	}
}

// replan rebuilds the plan at time now, quarantining Coflows a permanent
// outage has made unroutable when a pass stalls — the simulator's repair of
// last resort, so every solvable registration still completes.
func (e *Engine) replan(now float64) error {
	for {
		id, err := e.replanOnce(now)
		if err == nil {
			return nil
		}
		if errors.Is(err, core.ErrStalled) {
			if lc := e.live[id]; lc != nil && e.strandDoomed(lc) {
				e.retire(now)
				continue
			}
		}
		return fmt.Errorf("daemon: replan coflow %d at t=%.6f: %w", id, now, err)
	}
}

// planCacheEntry snapshots one Coflow's schedule from the previous replanning
// pass, with the fingerprints reuse certification validates it against
// (DESIGN.md §7). It mirrors the simulator's cache entry: the input flows,
// the output reservations, and the port context the intra search saw.
type planCacheEntry struct {
	id int
	// flows is the IntraCoflow input the schedule was computed from,
	// compared bit-exactly at reuse time.
	flows []coflow.Flow
	// res is the cached schedule; the entry owns the slice.
	res []core.Reservation
	// minStart and maxEnd bound res ((+Inf, -Inf) when empty).
	minStart, maxEnd float64
	// ctx is the busy intervals visible on the input flows' ports when the
	// schedule was computed, trimmed to horizon; reuse requires the current
	// table to match it bit for bit.
	ctx []core.PortSpan
	// horizon bounds the table range the cached search could have consulted:
	// maxEnd + δ + 2·timeEps.
	horizon float64
}

// replanScratch pools the per-pass allocations of replanOnce so a
// steady-state replan allocates nothing beyond what IntraCoflow needs.
type replanScratch struct {
	lockedFuture map[int]map[fabric.FlowKey]float64
	exclPool     []map[fabric.FlowKey]float64
	tmps         []*coflow.Coflow
	order        []*coflow.Coflow
	key          map[int]float64
	sched        *coflow.Coflow
	nextCache    []planCacheEntry
	// cacheIdx maps Coflow id to its index in Engine.cache, rebuilt each
	// incremental pass.
	cacheIdx map[int]int
	// spans is the pre-run port-context snapshot buffer; ins and outs hold
	// the sorted unique ports of the flows being certified or snapshotted.
	spans     []core.PortSpan
	ins, outs []int
}

// takeLockedFuture returns the pooled outer exclusion map, emptied, with the
// inner maps recycled into the pool.
func (sc *replanScratch) takeLockedFuture() map[int]map[fabric.FlowKey]float64 {
	if sc.lockedFuture == nil {
		sc.lockedFuture = map[int]map[fabric.FlowKey]float64{}
		return sc.lockedFuture
	}
	for id, m := range sc.lockedFuture {
		clear(m)
		sc.exclPool = append(sc.exclPool, m)
		delete(sc.lockedFuture, id)
	}
	return sc.lockedFuture
}

// takeExcl returns an empty inner exclusion map, pooled when available.
func (sc *replanScratch) takeExcl() map[fabric.FlowKey]float64 {
	if n := len(sc.exclPool); n > 0 {
		m := sc.exclPool[n-1]
		sc.exclPool = sc.exclPool[:n-1]
		return m
	}
	return map[fabric.FlowKey]float64{}
}

// replanOnce is one scheduling pass: in-flight reservations are kept
// (non-preemption), everything else is rescheduled in priority order against
// the remaining demand of all live Coflows. On a fault-free fabric the pass
// reuses the previous pass's schedule for every Coflow whose certification
// holds — bit-identical by the reuse contract of DESIGN.md §7, which the
// engine differential property tests enforce. Circuits that completed since
// the last pass leave the plan here, and their full planned bytes are folded
// into the drift-free base remainder in the same breath.
func (e *Engine) replanOnce(now float64) (int, error) {
	e.replans++
	o := e.obs
	if o != nil {
		o.SchedPasses.Inc()
	}
	// In-place locked filter: locked is a subsequence of plan and the pass
	// rebuilds plan from it below.
	locked := e.plan[:0]
	for _, r := range e.plan {
		if r.Start >= now-timeEps {
			continue // never established; the pass replans its demand
		}
		if r.End > now+timeEps {
			locked = append(locked, r)
			continue
		}
		if lc := e.live[r.CoflowID]; lc != nil && lc.base != nil {
			lc.base[fabric.FlowKey{Src: r.In, Dst: r.Out}] -= r.Bytes
		}
	}

	prt := e.prt
	prt.Reset()
	if len(e.outages) > 0 {
		// Degraded table: re-seed defensively — a locked circuit that no
		// longer fits is invalidated rather than crashing the run — then
		// block every port interval an outage keeps down.
		kept := locked[:0]
		for _, r := range locked {
			if prt.TryReserve(r) == nil {
				kept = append(kept, r)
			} else if lc := e.live[r.CoflowID]; lc != nil && lc.base != nil {
				// Invalidated mid-flight: only what it already delivered
				// leaves the drift-free remainder; the rest returns to the
				// replanner.
				lc.base[fabric.FlowKey{Src: r.In, Dst: r.Out}] -= r.TransmittedBy(now, e.cfg.LinkBps)
			}
		}
		locked = kept
		for port := 0; port < e.cfg.Ports; port++ {
			for _, og := range e.outages {
				if og.Port == port && og.End > now+timeEps {
					prt.Block(port, math.Max(og.Start, now), og.End)
				}
			}
		}
	}

	sc := &e.scratch
	lockedFuture := sc.takeLockedFuture()
	for i := range locked {
		r := &locked[i]
		if e.live[r.CoflowID] != nil {
			m := lockedFuture[r.CoflowID]
			if m == nil {
				m = sc.takeExcl()
				lockedFuture[r.CoflowID] = m
			}
			m[fabric.FlowKey{Src: r.In, Dst: r.Out}] += r.Bytes
		}
	}

	for len(sc.tmps) < len(e.live) {
		sc.tmps = append(sc.tmps, &coflow.Coflow{})
	}
	n := 0
	for _, lc := range e.live {
		remainderInto(sc.tmps[n], lc)
		n++
	}
	ordered := e.orderLive(sc.tmps[:n])

	incremental := e.incremental && len(e.outages) == 0
	if incremental {
		e.compactCache()
		sc.nextCache = sc.nextCache[:0]
		if sc.cacheIdx == nil {
			sc.cacheIdx = map[int]int{}
		} else {
			clear(sc.cacheIdx)
		}
		for i := range e.cache {
			sc.cacheIdx[e.cache[i].id] = i
		}
	}
	id, err := e.schedulePass(now, ordered, locked, incremental)
	if err == errBulkFallback {
		// The replayed reservations did not fit the table: the reuse checks
		// missed an invalidation. Rebuild the pass from scratch and drop the
		// cache — defense in depth, the differential suites never reach here.
		prt.Reset()
		sc.nextCache = sc.nextCache[:0]
		for i := range e.cache {
			e.cache[i] = planCacheEntry{}
		}
		e.cache = e.cache[:0]
		return e.schedulePass(now, ordered, locked, false)
	}
	if err == nil && incremental {
		// Swap the rebuilt cache in; stale entries are zeroed so the old
		// backing array does not pin retired schedules for the GC.
		old := e.cache
		e.cache = sc.nextCache
		for i := range old {
			old[i] = planCacheEntry{}
		}
		sc.nextCache = old[:0]
	}
	return id, err
}

// errBulkFallback signals that replayed cached reservations conflicted with
// the table — the reuse checks missed an invalidation — and the pass must be
// redone as a full rebuild.
var errBulkFallback = errors.New("daemon: cached schedule replay conflicted")

// schedulePass rebuilds the plan for one scheduling pass, replaying each
// cached schedule whose certification proves it bit-identical to what
// IntraCoflow would recompute, and running IntraCoflow for the rest. The
// certification is the simulator's (DESIGN.md §7): bit-exact input flows,
// the minStart/eps-band guard, and a bit-exact match of the busy intervals
// visible on the entry's ports against the snapshot taken when it was
// computed.
func (e *Engine) schedulePass(now float64, ordered []*coflow.Coflow, locked []core.Reservation, reuse bool) (int, error) {
	o := e.obs
	prt := e.prt
	sc := &e.scratch
	if reuse {
		prt.BulkAdd(locked)
		if err := prt.FinishBulk(); err != nil {
			return 0, errBulkFallback
		}
	} else if len(e.outages) == 0 {
		prt.Preload(locked)
	}
	e.plan = locked
	for _, tmp := range ordered {
		lc := e.live[tmp.ID]
		var ce *planCacheEntry
		if reuse {
			if k, ok := sc.cacheIdx[tmp.ID]; ok {
				ce = &e.cache[k]
			}
		}
		if ce != nil && e.reusable(ce, tmp, lc, now) {
			for i := range ce.res {
				if err := prt.TryReserve(ce.res[i]); err != nil {
					return 0, errBulkFallback
				}
			}
			finish := math.Max(now, lc.arrival)
			if ce.maxEnd > finish {
				finish = ce.maxEnd
			}
			for _, r := range locked {
				if r.CoflowID == tmp.ID && r.End > finish {
					finish = r.End
				}
			}
			lc.finish = finish
			e.plan = append(e.plan, ce.res...)
			sc.nextCache = append(sc.nextCache, *ce)
			if o != nil {
				o.IntraSkipped.Inc()
			}
			continue
		}
		// Dirty: snapshot the port context the search is about to see, then
		// run the scheduler.
		toSchedule := e.schedInput(tmp, lc)
		start := math.Max(now, lc.arrival)
		if reuse {
			sc.ins, sc.outs = flowPorts(toSchedule.Flows, sc.ins, sc.outs)
			sc.spans = prt.SpansOn(start, math.Inf(1), sc.ins, sc.outs, sc.spans[:0])
		}
		sched, err := core.IntraCoflow(prt, toSchedule, core.Options{
			LinkBps: e.cfg.LinkBps,
			Delta:   e.cfg.Delta,
			Start:   start,
			Order:   e.cfg.Order,
			Seed:    e.cfg.Seed,
			Obs:     e.obs,
		})
		if err != nil {
			return tmp.ID, err
		}
		finish := sched.Finish
		for _, r := range locked {
			if r.CoflowID == tmp.ID && r.End > finish {
				finish = r.End
			}
		}
		lc.finish = finish
		e.plan = append(e.plan, sched.Reservations...)
		if reuse {
			ne := newCacheEntry(tmp.ID, toSchedule.Flows, sched.Reservations)
			ne.horizon = ne.maxEnd + e.cfg.Delta + 2*timeEps
			for _, sp := range sc.spans {
				if sp.Start < ne.horizon {
					ne.ctx = append(ne.ctx, sp)
				}
			}
			sc.nextCache = append(sc.nextCache, ne)
		}
	}
	return 0, nil
}

// compactCache drops cache entries for Coflows that have left the fabric.
func (e *Engine) compactCache() {
	out := e.cache[:0]
	for i := range e.cache {
		if e.live[e.cache[i].id] != nil {
			out = append(out, e.cache[i])
		}
	}
	for i := len(out); i < len(e.cache); i++ {
		e.cache[i] = planCacheEntry{}
	}
	e.cache = out
}

// reusable reports whether the cached entry can be replayed for the Coflow
// this pass; see the simulator's reusable for the certification argument.
func (e *Engine) reusable(ce *planCacheEntry, tmp *coflow.Coflow, lc *liveEntry, now float64) bool {
	if lc == nil {
		return false
	}
	if ce.minStart < now || (ce.minStart > now && ce.minStart <= now+timeEps) {
		return false
	}
	if !flowsEqual(ce.flows, e.schedInput(tmp, lc).Flows) {
		return false
	}
	sc := &e.scratch
	sc.ins, sc.outs = flowPorts(ce.flows, sc.ins, sc.outs)
	return e.prt.SpansMatch(ce.ctx, math.Max(now, lc.arrival), ce.horizon, sc.ins, sc.outs)
}

// flowPorts fills ins and outs with the sorted unique source and destination
// ports of the flows, reusing the given backing slices. Flows arrive in
// (Src, Dst) order, so sources dedupe in place; destinations need a sort.
func flowPorts(flows []coflow.Flow, ins, outs []int) ([]int, []int) {
	ins, outs = ins[:0], outs[:0]
	for i := range flows {
		if n := len(ins); n == 0 || ins[n-1] != flows[i].Src {
			ins = append(ins, flows[i].Src)
		}
		outs = append(outs, flows[i].Dst)
	}
	sort.Ints(outs)
	w := 0
	for i, d := range outs {
		if i == 0 || d != outs[w-1] {
			outs[w] = d
			w++
		}
	}
	return ins, outs[:w]
}

// flowsEqual compares two flow slices exactly — Flow is comparable, so this
// is a bit-exact test of the scheduler input.
func flowsEqual(a, b []coflow.Flow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// newCacheEntry snapshots one freshly-computed schedule. The input flows are
// copied because the pooled remainder buffer they sit in recycles next pass;
// the reservations slice is owned by the schedule just computed (the plan
// keeps its own copies).
func newCacheEntry(id int, flows []coflow.Flow, res []core.Reservation) planCacheEntry {
	ce := planCacheEntry{
		id:       id,
		flows:    append([]coflow.Flow(nil), flows...),
		res:      res,
		minStart: math.Inf(1),
		maxEnd:   math.Inf(-1),
	}
	for i := range res {
		if res[i].Start < ce.minStart {
			ce.minStart = res[i].Start
		}
		if res[i].End > ce.maxEnd {
			ce.maxEnd = res[i].End
		}
	}
	return ce
}

// schedInput builds the IntraCoflow input for the Coflow this pass: the
// drift-free base remainder minus the full planned bytes of its in-flight
// circuits. A Coflow that never carried a byte and holds no circuits keeps
// its pooled priority-sort header — rem and base are still bit-identical
// there, so the remainders are too.
func (e *Engine) schedInput(tmp *coflow.Coflow, lc *liveEntry) *coflow.Coflow {
	excl := e.scratch.lockedFuture[lc.id]
	if lc.base == nil && excl == nil {
		return tmp
	}
	if e.scratch.sched == nil {
		e.scratch.sched = &coflow.Coflow{}
	}
	src := lc.rem
	if lc.base != nil {
		src = lc.base
	}
	return remainderFrom(e.scratch.sched, lc, src, excl)
}

// orderLive sorts the remainder Coflows for scheduling: shortest-first within
// a priority class, strictly higher classes first. With all priorities zero
// this is exactly the simulator's shortest-Coflow-first policy. The sort runs
// in the pooled scratch.
func (e *Engine) orderLive(tmps []*coflow.Coflow) []*coflow.Coflow {
	sc := &e.scratch
	if sc.key == nil {
		sc.key = make(map[int]float64, len(tmps))
	}
	sc.order = core.ShortestFirst{LinkBps: e.cfg.LinkBps}.SortInto(tmps, sc.order, sc.key)
	out := sc.order
	sort.SliceStable(out, func(a, b int) bool {
		return e.live[out[a].ID].priority > e.live[out[b].ID].priority
	})
	return out
}

// remainderInto rebuilds tmp as the live entry's remaining demand from the
// continuously-credited rem — the priority-key view.
func remainderInto(tmp *coflow.Coflow, lc *liveEntry) *coflow.Coflow {
	return remainderFrom(tmp, lc, lc.rem, nil)
}

// remainderFrom rebuilds tmp as the Coflow's remaining demand read from src,
// optionally excluding demand that locked reservations will serve. Flows
// come out in (Src, Dst) order without sorting: lc.keys was sorted once at
// registration and keys stranded out of the map are skipped on read.
func remainderFrom(tmp *coflow.Coflow, lc *liveEntry, src, exclude map[fabric.FlowKey]float64) *coflow.Coflow {
	tmp.ID, tmp.Arrival = lc.id, lc.arrival
	flows := tmp.Flows[:0]
	for _, k := range lc.keys {
		b, ok := src[k]
		if !ok {
			continue
		}
		if exclude != nil {
			b -= exclude[k]
		}
		if b > byteEps {
			flows = append(flows, coflow.Flow{Src: k.Src, Dst: k.Dst, Bytes: b})
		}
	}
	tmp.Flows = flows
	return tmp
}

// truncatePort invalidates the in-flight portion of every established circuit
// touching a port that just failed, mirroring the simulator.
func (e *Engine) truncatePort(port int, bt float64) {
	for idx := range e.plan {
		r := &e.plan[idx]
		if r.In != port && r.Out != port {
			continue
		}
		if r.Start >= bt-timeEps || r.End <= bt+timeEps {
			continue
		}
		delivered := r.TransmittedBy(bt, e.cfg.LinkBps)
		r.End = bt
		if delivered < r.Bytes {
			r.Bytes = delivered
		}
		if r.Setup > bt-r.Start {
			r.Setup = bt - r.Start
		}
	}
}

// nextOutageBoundary returns the earliest outage start or finite end strictly
// after t, or +Inf.
func (e *Engine) nextOutageBoundary(t float64) float64 {
	next := math.Inf(1)
	for _, og := range e.outages {
		if og.Start > t+timeEps {
			next = math.Min(next, og.Start)
		}
		if !og.permanent() && og.End > t+timeEps {
			next = math.Min(next, og.End)
		}
	}
	return next
}

// permanentFrom returns the earliest permanent-outage start on the port, or
// +Inf.
func (e *Engine) permanentFrom(port int) float64 {
	from := math.Inf(1)
	for _, og := range e.outages {
		if og.Port == port && og.permanent() {
			from = math.Min(from, og.Start)
		}
	}
	return from
}

// quarantine strands every live flow whose source or destination port is
// permanently dead as of now.
func (e *Engine) quarantine(now float64) {
	any := false
	for _, og := range e.outages {
		if og.permanent() {
			any = true
			break
		}
	}
	if !any {
		return
	}
	for _, id := range sortedIDs(e.live) {
		e.strandFlows(e.live[id], func(k fabric.FlowKey) bool {
			return e.permanentFrom(k.Src) <= now+timeEps || e.permanentFrom(k.Dst) <= now+timeEps
		})
	}
}

// strandDoomed quarantines the Coflow's flows touching any port with a
// permanent failure anywhere on the horizon — the repair when a scheduling
// pass stalls against the degraded table.
func (e *Engine) strandDoomed(lc *liveEntry) bool {
	return e.strandFlows(lc, func(k fabric.FlowKey) bool {
		return !math.IsInf(e.permanentFrom(k.Src), 1) || !math.IsInf(e.permanentFrom(k.Dst), 1)
	})
}

// strandFlows removes from the live Coflow every unfinished flow matching
// cond, accumulating the stranded demand on the entry.
func (e *Engine) strandFlows(lc *liveEntry, cond func(fabric.FlowKey) bool) bool {
	keys := make([]fabric.FlowKey, 0, len(lc.rem))
	for k := range lc.rem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Src != keys[b].Src {
			return keys[a].Src < keys[b].Src
		}
		return keys[a].Dst < keys[b].Dst
	})
	any := false
	for _, k := range keys {
		b := lc.rem[k]
		if b <= byteEps || !cond(k) {
			continue
		}
		any = true
		lc.stranded = true
		lc.strandedBytes += b
		delete(lc.rem, k)
		delete(lc.base, k)
		if o := e.obs; o != nil {
			o.FlowsStranded.Inc()
			o.StrandedBytes.Add(b)
		}
	}
	return any
}

// foldDigest chains the applied event and resulting schedule state into the
// Engine digest. Rejected events fold too (with applied=false and no plan
// bytes changing), so a recovered WAL replay that re-rejects stays aligned.
//
// The plan folds in canonical (Start, In, Out) order, not slice order: the
// slice order is scheduler-emitted on a live engine but snapshot-canonical on
// a restored one, and both must fingerprint identically. Port exclusivity
// makes the canonical key total — two reservations sharing Start and In
// would overlap on the input port.
func (e *Engine) foldDigest(ev Event, applied bool) {
	h := sha256.New()
	h.Write(e.digest[:])
	var buf [8]byte
	putU := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	putF := func(v float64) { putU(math.Float64bits(v)) }
	h.Write([]byte(ev.Kind))
	putU(ev.Seq)
	putF(ev.At)
	putU(uint64(int64(ev.Coflow)))
	putU(uint64(int64(ev.Priority)))
	putU(uint64(int64(ev.Port)))
	putF(ev.Duration)
	for _, f := range ev.Flows {
		putU(uint64(int64(f.Src)))
		putU(uint64(int64(f.Dst)))
		putF(f.Bytes)
	}
	if applied {
		putU(1)
	} else {
		putU(0)
	}
	putF(e.now)
	putU(uint64(len(e.plan)))
	plan := append([]core.Reservation(nil), e.plan...)
	sort.Slice(plan, func(a, b int) bool {
		if plan[a].Start != plan[b].Start {
			return plan[a].Start < plan[b].Start
		}
		if plan[a].In != plan[b].In {
			return plan[a].In < plan[b].In
		}
		return plan[a].Out < plan[b].Out
	})
	for _, r := range plan {
		putU(uint64(int64(r.CoflowID)))
		putU(uint64(int64(r.In)))
		putU(uint64(int64(r.Out)))
		putF(r.Start)
		putF(r.End)
		putF(r.Setup)
		putF(r.Bytes)
	}
	sum := h.Sum(nil)
	copy(e.digest[:], sum)
}

// hashSpec fingerprints a registration's priority and flows, in registration
// order. Snapshots do not carry it for live Coflows — restoreState recomputes
// it from the preserved spec — and completions round-trip it as JSON.
func hashSpec(priority int, flows []FlowSpec) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(int64(priority)))
	for _, f := range flows {
		put(uint64(int64(f.Src)))
		put(uint64(int64(f.Dst)))
		put(math.Float64bits(f.Bytes))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// sameSpec reports whether two registrations carry identical flows.
func sameSpec(a, b []FlowSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedIDs returns the live map's keys ascending.
func sortedIDs(live map[int]*liveEntry) []int {
	ids := make([]int, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
