package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
)

// The /v1 API, mounted on the obshttp exposition server via Routes:
//
//	POST /v1/events          submit any Event (register/advance/complete/fault)
//	POST /v1/coflows         sugar for a register event
//	GET  /v1/coflows/{id}    one Coflow's live status or completion record
//	GET  /v1/status          engine status: clock, counts, digest, sequence
//
// Every POST blocks until the event is WAL-durable and applied, then returns
// the Ack. Admission control maps to status codes: 429 when shed, 503 while
// draining, 504 when the request deadline fired in the queue, 400/409 for the
// Engine's deterministic rejections.

// Status is the GET /v1/status body.
type Status struct {
	Now       float64 `json:"now"`
	Live      int     `json:"live"`
	Done      int     `json:"done"`
	Seq       uint64  `json:"seq"`
	Digest    string  `json:"digest"`
	Replans   uint64  `json:"replans"`
	Recovered int     `json:"recovered"`
	Draining  bool    `json:"draining,omitempty"`
}

// read asks the apply loop for a consistent engine snapshot: reads must
// serialize with applies, and the loop is the serialization point, so the
// loop itself builds the reply — handlers never touch the Engine, whose maps
// the loop may be mutating concurrently. Reads ride the intake queue, which
// keeps the read path identical to the write path under load: if applies are
// wedged, reads block and fail their deadline rather than returning torn
// state. To stay deterministic a read never touches the WAL. A non-nil
// coflow additionally requests that Coflow's view in the reply.
func (d *Daemon) read(ctx context.Context, coflow *int) (result, error) {
	req := request{ctx: ctx, reply: make(chan result, 1), ev: Event{Kind: kindStatus}, coflow: coflow}
	select {
	case d.intake <- req:
	case <-ctx.Done():
		return result{}, ctx.Err()
	case <-d.doneCh:
		// The loop has exited; nothing mutates the Engine anymore.
		return d.snapshot(coflow), nil
	}
	select {
	case r := <-req.reply:
		return r, r.err
	case <-ctx.Done():
		return result{}, ctx.Err()
	}
}

// status is the GET /v1/status read.
func (d *Daemon) status(ctx context.Context) (Status, error) {
	r, err := d.read(ctx, nil)
	return r.status, err
}

// kindStatus is an internal request kind that makes the apply loop answer
// without touching the WAL. It is never valid in the WAL.
const kindStatus EventKind = "_status"

// snapshot builds the read reply. Only the apply loop's goroutine may call
// it — or anyone, once the loop has exited.
func (d *Daemon) snapshot(coflow *int) result {
	eng := d.store.Engine()
	res := result{status: Status{
		Now:       eng.Now(),
		Live:      eng.LiveCount(),
		Done:      eng.DoneCount(),
		Seq:       d.store.LastSeq(),
		Digest:    eng.Digest(),
		Replans:   eng.Replans(),
		Recovered: d.store.Recovered(),
		Draining:  d.draining.Load(),
	}}
	if coflow != nil {
		res.view = d.coflowSnapshot(*coflow)
	}
	return res
}

// coflowSnapshot builds one Coflow's view, nil when the id is unknown. Same
// calling rules as snapshot.
func (d *Daemon) coflowSnapshot(id int) *coflowView {
	eng := d.store.Engine()
	if c, ok := eng.Completion(id); ok {
		return &coflowView{Coflow: id, State: "done", Completion: &c}
	}
	for _, ls := range eng.Live() {
		if ls.Coflow == id {
			ls := ls
			return &coflowView{Coflow: id, State: "live", Live: &ls}
		}
	}
	return nil
}

// Routes returns the /v1 handlers for obshttp.Options.Routes.
func (d *Daemon) Routes() map[string]http.Handler {
	return map[string]http.Handler{
		"/v1/events":   http.HandlerFunc(d.handleEvents),
		"/v1/coflows":  http.HandlerFunc(d.handleCoflows),
		"/v1/coflows/": http.HandlerFunc(d.handleCoflow),
		"/v1/status":   http.HandlerFunc(d.handleStatus),
	}
}

// submitHTTP runs one event and writes the Ack or the mapped error.
func (d *Daemon) submitHTTP(w http.ResponseWriter, r *http.Request, ev Event) {
	ack, err := d.Submit(r.Context(), ev)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

// handleEvents is POST /v1/events: a raw Event body.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var ev Event
	if err := decodeBody(r, &ev); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ev.Seq = 0 // sequence numbers are assigned at acceptance, never by clients
	d.submitHTTP(w, r, ev)
}

// registerRequest is the POST /v1/coflows body.
type registerRequest struct {
	Coflow   int        `json:"coflow"`
	At       float64    `json:"at"`
	Priority int        `json:"priority,omitempty"`
	Flows    []FlowSpec `json:"flows"`
}

// handleCoflows is POST /v1/coflows: register sugar.
func (d *Daemon) handleCoflows(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var reg registerRequest
	if err := decodeBody(r, &reg); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	d.submitHTTP(w, r, Event{
		Kind:     KindRegister,
		At:       reg.At,
		Coflow:   reg.Coflow,
		Priority: reg.Priority,
		Flows:    reg.Flows,
	})
}

// coflowView is the GET /v1/coflows/{id} body.
type coflowView struct {
	Coflow     int         `json:"coflow"`
	State      string      `json:"state"` // "live" or "done"
	Live       *LiveStatus `json:"live,omitempty"`
	Completion *Completion `json:"completion,omitempty"`
}

// handleCoflow is GET /v1/coflows/{id}.
func (d *Daemon) handleCoflow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/coflows/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		http.Error(w, "coflow id must be an integer", http.StatusBadRequest)
		return
	}
	// The apply loop builds the view so the read cannot race an apply.
	res, err := d.read(r.Context(), &id)
	if err != nil {
		writeError(w, err)
		return
	}
	if res.view == nil {
		http.Error(w, "unknown coflow", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, res.view)
}

// handleStatus is GET /v1/status.
func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	st, err := d.status(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// decodeBody parses a JSON request body strictly.
func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}

// writeError maps service and engine errors to HTTP status codes.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrOverloaded):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrStopped):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = http.StatusGatewayTimeout
	case errors.Is(err, ErrBadEvent):
		code = http.StatusBadRequest
	case errors.Is(err, ErrDuplicateCoflow), errors.Is(err, ErrUnknownCoflow):
		code = http.StatusConflict
	}
	http.Error(w, err.Error(), code)
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
