package matrix

import (
	"strings"
	"testing"
)

const goodSpec = `{
  "name": "t",
  "schedulers": ["sunflow", "varys"],
  "ports": [12, 24],
  "deltas_ms": [10],
  "workloads": [{"name": "tiny", "coflows": 8, "max_width": 4}],
  "replications": 2,
  "seed": 1
}`

func TestParseSpecGood(t *testing.T) {
	s, err := ParseSpec([]byte(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Confidence != 0.95 || s.BootstrapResamples != 1000 {
		t.Errorf("defaults not applied: %+v", s)
	}
	if len(s.LinkGbps) != 1 || s.LinkGbps[0] != 1 {
		t.Errorf("link axis default: %v", s.LinkGbps)
	}
	cells := s.Expand()
	if len(cells) != 4 { // 2 schedulers × 2 ports
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}
	// Scheduler varies fastest, so a scenario's comparison group is
	// contiguous; indexes are sequential.
	if cells[0].Scheduler != "sunflow" || cells[1].Scheduler != "varys" || cells[0].Ports != cells[1].Ports {
		t.Errorf("axis order: %+v", cells[:2])
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
	}
	if got := s.Runs(); got != 8 {
		t.Errorf("Runs = %d, want 8", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := map[string]struct {
		spec    string
		wantErr string
	}{
		"unknown scheduler": {
			`{"schedulers": ["sunflow", "sparrow"], "replications": 1}`,
			"unknown scheduler",
		},
		"zero replications": {
			`{"schedulers": ["sunflow"], "replications": 0}`,
			"replications",
		},
		"negative replications": {
			`{"schedulers": ["sunflow"], "replications": -3}`,
			"replications",
		},
		"empty schedulers": {
			`{"schedulers": [], "replications": 1}`,
			"schedulers axis is empty",
		},
		"duplicate scheduler cells": {
			`{"schedulers": ["varys", "varys"], "replications": 1}`,
			"duplicate scheduler",
		},
		"duplicate ports cells": {
			`{"schedulers": ["sunflow"], "ports": [24, 24], "replications": 1}`,
			"duplicate ports",
		},
		"duplicate delta cells": {
			`{"schedulers": ["sunflow"], "deltas_ms": [10, 10], "replications": 1}`,
			"duplicate deltas_ms",
		},
		"duplicate workload cells": {
			`{"schedulers": ["sunflow"], "workloads": [{"name": "a"}, {"name": "a", "coflows": 9}], "replications": 1}`,
			"duplicate workload",
		},
		"duplicate fault cells": {
			`{"schedulers": ["sunflow"], "fault_rates": [0.1, 0.1], "replications": 1}`,
			"duplicate fault_rates",
		},
		"bad ports value": {
			`{"schedulers": ["sunflow"], "ports": [0], "replications": 1}`,
			"ports must be positive",
		},
		"bad delta value": {
			`{"schedulers": ["sunflow"], "deltas_ms": [-1], "replications": 1}`,
			"deltas_ms must be positive",
		},
		"fault rate out of range": {
			`{"schedulers": ["sunflow"], "fault_rates": [1.5], "replications": 1}`,
			"fault_rates must be in [0, 1)",
		},
		"fault axis with fault-free scheduler": {
			`{"schedulers": ["sunflow", "tms"], "fault_rates": [0, 0.05], "replications": 1}`,
			"fault-capable",
		},
		"bad confidence": {
			`{"schedulers": ["sunflow"], "replications": 1, "confidence": 1.5}`,
			"confidence",
		},
		"unknown field": {
			`{"schedulers": ["sunflow"], "replications": 1, "portz": [8]}`,
			"unknown field",
		},
		"trailing data": {
			`{"schedulers": ["sunflow"], "replications": 1} {"again": true}`,
			"trailing data",
		},
	}
	for name, c := range cases {
		_, err := ParseSpec([]byte(c.spec))
		if err == nil {
			t.Errorf("%s: expected an error", name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, c.wantErr)
		}
	}
}

func TestLoadSpecSmokeExample(t *testing.T) {
	s, err := LoadSpec("../../examples/matrix/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Schedulers) != 2 || s.Replications != 2 {
		t.Errorf("smoke spec drifted from the documented 2×2×2 shape: %+v", s)
	}
	if got := s.Runs(); got > 16 {
		t.Errorf("smoke spec expands to %d runs; keep it CI-sized", got)
	}
}

func TestCellKeyGroupsScenario(t *testing.T) {
	s, err := ParseSpec([]byte(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	cells := s.Expand()
	if cells[0].Key() != cells[1].Key() {
		t.Errorf("same scenario, different keys: %q vs %q", cells[0].Key(), cells[1].Key())
	}
	if cells[0].Key() == cells[2].Key() {
		t.Errorf("different ports must give different keys: %q", cells[0].Key())
	}
}
