package matrix

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sunflow/internal/bench"
	"sunflow/internal/edmond"
	"sunflow/internal/fabric"
	"sunflow/internal/fault"
	"sunflow/internal/obs"
	"sunflow/internal/obs/span"
	"sunflow/internal/sim"
	"sunflow/internal/solstice"
	"sunflow/internal/stats"
	"sunflow/internal/tms"
	"sunflow/internal/varys"
)

// Rep is one replication's measurements in one cell.
type Rep struct {
	// Seed is the workload seed this replication ran on (Spec.Seed + index).
	Seed int64 `json:"seed"`
	// AvgCCT and P95CCT summarize the Coflow completion times in seconds.
	AvgCCT float64 `json:"avg_cct"`
	P95CCT float64 `json:"p95_cct"`
	// DutyCycle is the circuit duty cycle (0 for packet schedulers).
	DutyCycle float64 `json:"duty_cycle"`
	// Switches counts circuit establishments across the run.
	Switches int64 `json:"switches"`
	// Completed and Stranded count Coflows that finished and flows
	// quarantined by permanent faults.
	Completed int `json:"completed"`
	Stranded  int `json:"stranded,omitempty"`
}

// Estimate aggregates one metric across a cell's replications.
type Estimate struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	// T is the Student-t confidence interval, Boot the percentile-bootstrap
	// interval, both at Spec.Confidence.
	T    stats.Interval `json:"t"`
	Boot stats.Interval `json:"boot"`
}

// CellResult is one cell's replications and aggregates; the JSONL report
// writes one line per CellResult.
type CellResult struct {
	Cell
	Reps      []Rep    `json:"reps"`
	AvgCCT    Estimate `json:"agg_avg_cct"`
	P95CCT    Estimate `json:"agg_p95_cct"`
	DutyCycle Estimate `json:"agg_duty_cycle"`
	Switches  Estimate `json:"agg_switches"`
	// Digest is the hex SHA-256 of the cell's axes and replication rows —
	// the determinism fingerprint CI compares across runs.
	Digest string `json:"digest"`
}

// Speedup is the paired CCT ratio of two schedulers on one scenario: per
// replication r, Numerator's average CCT over Denominator's on the same
// seed, aggregated like any cell metric. Ratio < 1 means the numerator
// scheduler is faster.
type Speedup struct {
	Scenario    string   `json:"scenario"`
	Numerator   string   `json:"numerator"`
	Denominator string   `json:"denominator"`
	Ratio       Estimate `json:"ratio"`
	// Pairs is the number of replications whose denominator CCT was
	// positive (the paired sample size behind Ratio).
	Pairs int `json:"pairs"`
}

// Result is one full matrix run.
type Result struct {
	Spec     Spec         `json:"spec"`
	Cells    []CellResult `json:"cells"`
	Speedups []Speedup    `json:"speedups"`
	// Truncated reports that Options.Cancel fired mid-run: Cells holds only
	// the cells whose every replication finished (those are byte-identical to
	// an uninterrupted run's), SkippedRuns counts the (cell, replication)
	// pairs never executed, and DroppedCells the partially-replicated cells
	// excluded from Cells.
	Truncated    bool `json:"truncated,omitempty"`
	SkippedRuns  int  `json:"skipped_runs,omitempty"`
	DroppedCells int  `json:"dropped_cells,omitempty"`
}

// Options configures a Run.
type Options struct {
	// Workers bounds parallelism across (cell, replication) pairs; the
	// semantics are bench.Config.Workers' (0 = GOMAXPROCS, negative =
	// serial).
	Workers int
	// Logf, when set, receives one progress line per completed cell.
	Logf func(format string, args ...any)
	// Obs, when non-nil, publishes engine utilization into its Registry:
	// "matrix.workers_busy" and "matrix.queue_depth" gauges plus a
	// "matrix.rep_seconds" histogram of per-replication wall times. Wall
	// clock stays registry-only — it never enters Rep, CellResult or the
	// JSONL report, which remain byte-deterministic across reruns.
	Obs *obs.Observer
	// Prof, when non-nil, records one "matrix.rep" span per (cell,
	// replication) run, attributed with scheduler, cell key and rep index,
	// with the replication's simulator and kernel spans nested beneath it.
	// Each worker job records through its own span.Stack.
	Prof *span.Profiler
	// Cancel, when non-nil and closed, stops launching new replications.
	// Runs already in flight finish; Run then aggregates every fully
	// replicated cell and returns a Result marked Truncated instead of an
	// error, so a partial run still yields a flushable report.
	Cancel <-chan struct{}
}

// cancelled reports whether Cancel has fired.
func (o Options) cancelled() bool {
	select {
	case <-o.Cancel:
		return true
	default:
		return false
	}
}

// Run expands the spec and executes it: every (cell, replication) pair is
// one simulator run on the bench worker pool, every cell is aggregated with
// t and bootstrap confidence intervals, and every scheduler pair sharing a
// scenario gets a paired speedup ratio.
func Run(spec Spec, opts Options) (*Result, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cells := spec.Expand()

	type job struct{ cell, rep int }
	jobs := make([]job, 0, len(cells)*spec.Replications)
	for c := range cells {
		for r := 0; r < spec.Replications; r++ {
			jobs = append(jobs, job{cell: c, rep: r})
		}
	}

	reps := make([][]Rep, len(cells))
	ran := make([][]bool, len(cells))
	for i := range reps {
		reps[i] = make([]Rep, spec.Replications)
		ran[i] = make([]bool, spec.Replications)
	}
	errs := make([]error, len(jobs))
	var skipped atomic.Int64
	var done int
	var mu sync.Mutex

	// Engine utilization is published registry-only; per-rep wall clock never
	// reaches the deterministic outputs.
	var busyGauge, queueGauge *obs.Gauge
	var repHist *obs.Histogram
	if reg := opts.Obs.Registry(); reg != nil {
		busyGauge = reg.Gauge("matrix.workers_busy")
		queueGauge = reg.Gauge("matrix.queue_depth")
		repHist = reg.Histogram("matrix.rep_seconds")
		queueGauge.Set(int64(len(jobs)))
	}
	var busy, pending atomic.Int64
	pending.Store(int64(len(jobs)))

	pool := bench.Config{Workers: opts.Workers}
	pool.ParallelEach(len(jobs), func(i int) {
		j := jobs[i]
		cell := cells[j.cell]
		if opts.cancelled() {
			skipped.Add(1)
			return
		}
		if busyGauge != nil {
			busyGauge.Set(busy.Add(1))
			queueGauge.Set(pending.Add(-1))
		}
		// One Stack per job: ParallelEach may run jobs on any worker
		// goroutine, and Stacks are single-goroutine.
		st := opts.Prof.NewStack("matrix")
		repStart := time.Now()
		sp := st.Start("matrix.rep").
			Attr("scheduler", cell.Scheduler).
			Attr("cell", cell.Key()).
			Attr("rep", strconv.Itoa(j.rep))
		rep, err := runOne(spec, cell, j.rep, st)
		sec := time.Since(repStart).Seconds()
		sp.FinishWith(sec)
		if repHist != nil {
			repHist.Observe(sec)
		}
		if busyGauge != nil {
			busyGauge.Set(busy.Add(-1))
		}
		if err != nil {
			errs[i] = fmt.Errorf("matrix: cell %d (%s, %s) rep %d: %w",
				cell.Index, cell.Scheduler, cell.Key(), j.rep, err)
			return
		}
		reps[j.cell][j.rep] = rep
		ran[j.cell][j.rep] = true
		if opts.Logf != nil {
			mu.Lock()
			done++
			if done%spec.Replications == 0 {
				opts.Logf("matrix: %d/%d runs done", done, len(jobs))
			}
			mu.Unlock()
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Spec: spec, Cells: make([]CellResult, 0, len(cells))}
	if n := skipped.Load(); n > 0 {
		res.Truncated = true
		res.SkippedRuns = int(n)
	}
	for i, cell := range cells {
		complete := true
		for _, ok := range ran[i] {
			complete = complete && ok
		}
		if !complete {
			// A partially replicated cell would aggregate over zero-valued
			// rows; drop it so everything reported is byte-identical to an
			// uninterrupted run.
			res.DroppedCells++
			continue
		}
		cr := CellResult{Cell: cell, Reps: reps[i]}
		cr.AvgCCT = spec.estimate(metric(cr.Reps, func(r Rep) float64 { return r.AvgCCT }), cell.Index, 0)
		cr.P95CCT = spec.estimate(metric(cr.Reps, func(r Rep) float64 { return r.P95CCT }), cell.Index, 1)
		cr.DutyCycle = spec.estimate(metric(cr.Reps, func(r Rep) float64 { return r.DutyCycle }), cell.Index, 2)
		cr.Switches = spec.estimate(metric(cr.Reps, func(r Rep) float64 { return float64(r.Switches) }), cell.Index, 3)
		digest, err := cellDigest(cr)
		if err != nil {
			return nil, err
		}
		cr.Digest = digest
		res.Cells = append(res.Cells, cr)
	}
	res.Speedups = spec.speedups(res.Cells)
	return res, nil
}

// estimate aggregates one metric's replication samples. The bootstrap seed
// is a pure function of the spec seed, cell index and metric ordinal, so
// reruns reproduce the intervals bit-exactly.
func (s Spec) estimate(xs []float64, cellIndex, metricOrdinal int) Estimate {
	bootSeed := s.Seed + int64(cellIndex)*17 + int64(metricOrdinal)
	return Estimate{
		Mean:   stats.Mean(xs),
		Stddev: stats.Stddev(xs),
		T:      stats.TInterval(xs, s.Confidence),
		Boot:   stats.BootstrapMeanCI(xs, s.Confidence, s.BootstrapResamples, bootSeed),
	}
}

// speedups computes the pairwise scheduler CCT ratios within every scenario
// group, in spec axis order.
func (s Spec) speedups(cells []CellResult) []Speedup {
	if len(s.Schedulers) < 2 {
		return nil
	}
	byScenario := map[string]map[string][]float64{}
	var order []string
	for _, c := range cells {
		key := c.Key()
		if byScenario[key] == nil {
			byScenario[key] = map[string][]float64{}
			order = append(order, key)
		}
		byScenario[key][c.Scheduler] = metric(c.Reps, func(r Rep) float64 { return r.AvgCCT })
	}
	var out []Speedup
	for si, key := range order {
		group := byScenario[key]
		for ai, a := range s.Schedulers {
			for _, b := range s.Schedulers[ai+1:] {
				if len(group[a]) == 0 || len(group[b]) == 0 {
					// One side's cell was dropped by a truncated run; a
					// zero-pair speedup row would read as "ratio 0".
					continue
				}
				ratios := stats.PairedRatios(group[a], group[b])
				out = append(out, Speedup{
					Scenario:    key,
					Numerator:   a,
					Denominator: b,
					Ratio:       s.estimate(ratios, len(cells)+si, ai),
					Pairs:       len(ratios),
				})
			}
		}
	}
	return out
}

func metric(reps []Rep, f func(Rep) float64) []float64 {
	out := make([]float64, len(reps))
	for i, r := range reps {
		out[i] = f(r)
	}
	return out
}

// runOne executes one (cell, replication) simulator run, recording spans on
// st (nil disables profiling).
func runOne(spec Spec, cell Cell, rep int, st *span.Stack) (Rep, error) {
	seed := spec.Seed + int64(rep)
	cfg := bench.Config{
		Seed:     seed,
		Ports:    cell.Ports,
		Coflows:  cell.Workload.Coflows,
		MaxWidth: cell.Workload.MaxWidth,
		Dist:     cell.Workload.Dist,
		LinkBps:  cell.LinkGbps * bench.Gbps,
		Delta:    cell.DeltaMs / 1e3,
		Workers:  -1, // the matrix pool parallelizes across runs, not inside them
	}.WithDefaults()
	cs := cfg.Workload()

	var plan *fault.Plan
	if cell.FaultRate > 0 {
		// Transient outages must span the run to matter; size the horizon
		// off the arrival span as the resilience experiment does.
		horizon := 10.0
		for _, c := range cs {
			if c.Arrival+10 > horizon {
				horizon = c.Arrival + 10
			}
		}
		plan = bench.ResiliencePlan(seed, cell.FaultRate, horizon)
	}

	o := obs.New()
	out := Rep{Seed: seed}
	var ccts []float64

	switch cell.Scheduler {
	case "sunflow":
		copts := sim.CircuitOptions{
			Ports: cfg.Ports, LinkBps: cfg.LinkBps, Delta: cfg.Delta, Obs: o, Faults: plan, Prof: st,
		}
		var res sim.Result
		var err error
		if cell.ShardWorkers > 1 {
			// Sharded execution is bit-invariant to the worker count; the
			// shard-smoke spec's cells prove it by digest comparison.
			res, err = sim.RunCircuitSharded(cs, copts, cell.ShardWorkers)
		} else {
			res, err = sim.RunCircuit(cs, copts)
		}
		if err != nil {
			return out, err
		}
		ccts = cctValues(res.CCT)
		for _, n := range res.SwitchCount {
			out.Switches += int64(n)
		}
		if res.Partial != nil {
			out.Stranded = len(res.Partial.Stranded)
		}
	case "varys":
		res, err := sim.RunPacketOpts(cs, sim.PacketOptions{
			Ports: cfg.Ports, LinkBps: cfg.LinkBps, Alloc: varys.Allocator{Obs: o, Prof: st}, Obs: o, Faults: plan, Prof: st,
		})
		if err != nil {
			return out, err
		}
		ccts = cctValues(res.CCT)
		if res.Partial != nil {
			out.Stranded = len(res.Partial.Stranded)
		}
	case "solstice", "tms", "edmond":
		// Serialized intra-Coflow replay (§5.1): each Coflow alone in the
		// fabric, CCT = its finish time. The decomposition baselines have no
		// inter-Coflow mode.
		for _, orig := range cs {
			c, n := bench.Compact(orig)
			var res fabric.ExecResult
			var err error
			switch cell.Scheduler {
			case "solstice":
				res, _, err = solstice.Run(c, n, solstice.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta, Obs: o, Prof: st}, fabric.NotAllStop)
			case "tms":
				res, err = tms.Run(c, n, tms.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta, Obs: o, Prof: st}, fabric.AllStop)
			case "edmond":
				res, err = edmond.Run(c, n, edmond.Options{LinkBps: cfg.LinkBps, Delta: cfg.Delta, Slot: 0.3, Obs: o, Prof: st}, fabric.AllStop)
			}
			if err != nil {
				return out, fmt.Errorf("coflow %d: %w", c.ID, err)
			}
			ccts = append(ccts, res.Finish)
			out.Switches += int64(res.SwitchCount)
		}
	default:
		return out, fmt.Errorf("unknown scheduler %q", cell.Scheduler)
	}

	out.AvgCCT = stats.Mean(ccts)
	out.P95CCT = stats.Percentile(ccts, 95)
	out.DutyCycle = o.Summary().DutyCycle
	out.Completed = len(ccts)
	return out, nil
}

// cctValues extracts CCTs in Coflow-id order. The order matters: the mean
// is a float sum, and summing in map-iteration order would perturb the last
// bit from run to run, breaking the byte-identical JSONL guarantee.
func cctValues(m map[int]float64) []float64 {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = m[id]
	}
	return out
}
