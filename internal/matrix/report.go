package matrix

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// cellDigest fingerprints a cell's identity and raw replication rows (not
// the derived aggregates) as hex SHA-256 over their canonical JSON. Struct
// marshaling emits fields in declaration order and Go's float formatting is
// deterministic, so equal runs digest equally — the byte-identity gate CI's
// matrix-smoke job enforces.
func cellDigest(cr CellResult) (string, error) {
	payload := struct {
		Cell Cell  `json:"cell"`
		Reps []Rep `json:"reps"`
	}{cr.Cell, cr.Reps}
	data, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("matrix: digest cell %d: %w", cr.Index, err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data)), nil
}

// WriteJSONL writes the machine-readable report: one JSON object per line —
// first a header carrying the spec, then every cell, then every speedup
// row. Lines are self-typed via a "kind" field so downstream gates can
// stream-filter without holding the file.
func WriteJSONL(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	header := struct {
		Kind string `json:"kind"`
		Spec Spec   `json:"spec"`
	}{"spec", res.Spec}
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("matrix: write jsonl: %w", err)
	}
	for i := range res.Cells {
		row := struct {
			Kind string `json:"kind"`
			CellResult
		}{"cell", res.Cells[i]}
		if err := enc.Encode(row); err != nil {
			return fmt.Errorf("matrix: write jsonl cell %d: %w", i, err)
		}
	}
	for i := range res.Speedups {
		row := struct {
			Kind string `json:"kind"`
			Speedup
		}{"speedup", res.Speedups[i]}
		if err := enc.Encode(row); err != nil {
			return fmt.Errorf("matrix: write jsonl speedup %d: %w", i, err)
		}
	}
	if res.Truncated {
		// Trailer marking an interrupted run: the cells above are complete
		// and byte-identical to an uninterrupted run's, but the file is not
		// the whole spec. Determinism gates must not compare truncated files.
		marker := struct {
			Kind         string `json:"kind"`
			SkippedRuns  int    `json:"skipped_runs"`
			DroppedCells int    `json:"dropped_cells"`
		}{"truncated", res.SkippedRuns, res.DroppedCells}
		if err := enc.Encode(marker); err != nil {
			return fmt.Errorf("matrix: write jsonl truncation marker: %w", err)
		}
	}
	return nil
}

// Format renders the run as aligned text tables: one row per cell with the
// headline estimates and t-intervals, then the pairwise speedups.
func Format(res *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Matrix %q — %d cells × %d replications (%d runs), %.0f%% CIs\n",
		res.Spec.Name, len(res.Cells), res.Spec.Replications,
		len(res.Cells)*res.Spec.Replications, res.Spec.Confidence*100)
	if res.Truncated {
		fmt.Fprintf(&sb, "TRUNCATED: interrupted mid-run — %d runs skipped, %d partial cells dropped\n",
			res.SkippedRuns, res.DroppedCells)
	}

	widths := []int{0, 0, 0, 0, 0, 0}
	rows := [][]string{{"scenario", "scheduler", "avg CCT (t-CI)", "p95 CCT", "duty", "switches"}}
	for _, c := range res.Cells {
		rows = append(rows, []string{
			c.Key(),
			c.Scheduler,
			fmt.Sprintf("%.3fs [%.3f, %.3f]", c.AvgCCT.Mean, c.AvgCCT.T.Lo, c.AvgCCT.T.Hi),
			fmt.Sprintf("%.3fs", c.P95CCT.Mean),
			fmt.Sprintf("%.4f", c.DutyCycle.Mean),
			fmt.Sprintf("%.0f", c.Switches.Mean),
		})
	}
	writeAligned(&sb, rows, widths)

	if len(res.Speedups) > 0 {
		sb.WriteString("\nPairwise speedups (paired by seed; ratio < 1 favors the numerator)\n")
		rows = [][]string{{"scenario", "ratio", "mean [t-CI]", "pairs"}}
		for _, s := range res.Speedups {
			rows = append(rows, []string{
				s.Scenario,
				s.Numerator + "/" + s.Denominator,
				fmt.Sprintf("%.3f [%.3f, %.3f]", s.Ratio.Mean, s.Ratio.T.Lo, s.Ratio.T.Hi),
				fmt.Sprintf("%d", s.Pairs),
			})
		}
		writeAligned(&sb, rows, []int{0, 0, 0, 0})
	}
	return sb.String()
}

// writeAligned renders rows (first row is the header) with aligned columns.
func writeAligned(sb *strings.Builder, rows [][]string, widths []int) {
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for r, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(sb, "%-*s", widths[i]+2, cell)
		}
		sb.WriteString("\n")
		if r == 0 {
			for _, w := range widths {
				sb.WriteString(strings.Repeat("-", w) + "  ")
			}
			sb.WriteString("\n")
		}
	}
}
