package matrix

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"sunflow/internal/obs"
	"sunflow/internal/obs/obshttp"
	"sunflow/internal/obs/span"
)

// TestRunWithSpansKeepsOutputsIdentical guards the matrix determinism
// contract under profiling: wall-clock observability (gauges, histograms,
// span events) must never leak into the deterministic outputs, so an
// instrumented run writes byte-identical cells.jsonl to a bare one.
func TestRunWithSpansKeepsOutputsIdentical(t *testing.T) {
	spec := tinySpec(t)
	plain, err := Run(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	sink := &obs.SliceSink{}
	profiled, err := Run(spec, Options{
		Workers: 2,
		Obs:     obs.NewWith(reg, sink),
		Prof:    span.New(span.Options{Registry: reg, Sink: sink, Runtime: &span.Sampler{}}),
	})
	if err != nil {
		t.Fatal(err)
	}

	var want, got bytes.Buffer
	if err := WriteJSONL(&want, plain); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&got, profiled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("cells.jsonl differs between bare and profiled runs")
	}

	// One matrix.rep span per (cell, rep), scoped "matrix", carrying the
	// cell attributes.
	runs := spec.Runs()
	reps := 0
	for _, ev := range sink.Events() {
		if ev.Kind != obs.KindSpan || ev.Name != "matrix.rep" {
			continue
		}
		reps++
		if ev.Scope != "matrix" {
			t.Errorf("matrix.rep span in scope %q, want matrix", ev.Scope)
		}
		if ev.Attrs["scheduler"] == "" || ev.Attrs["cell"] == "" || ev.Attrs["rep"] == "" {
			t.Errorf("matrix.rep span missing attrs: %v", ev.Attrs)
		}
	}
	if reps != runs {
		t.Errorf("got %d matrix.rep spans, want %d", reps, runs)
	}

	// Engine utilization reached the registry: the busy gauge saw at least
	// one worker, the queue drained, and every rep landed in the histogram.
	if hi := reg.Gauge("matrix.workers_busy").High(); hi < 1 {
		t.Errorf("matrix.workers_busy high-water = %d, want >= 1", hi)
	}
	if q := reg.Gauge("matrix.queue_depth").Load(); q != 0 {
		t.Errorf("matrix.queue_depth = %d after the run, want 0", q)
	}
	if n := reg.Histogram("matrix.rep_seconds").Count(); n != int64(runs) {
		t.Errorf("matrix.rep_seconds count = %d, want %d", n, runs)
	}
}

// TestConcurrentScrapeDuringProfiledRun drives live /metrics scrapes while
// matrix workers record spans and gauges into the same registry — the
// contention pattern a dashboard watching a long matrix run produces. Run
// under -race this is the data-race gate for the span/registry hot path.
func TestConcurrentScrapeDuringProfiledRun(t *testing.T) {
	spec := tinySpec(t)
	reg := obs.NewRegistry()
	srv, err := obshttp.Serve("127.0.0.1:0", reg, obshttp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get("http://" + srv.Addr() + "/metrics")
				if err != nil {
					continue // server teardown race at test end is fine
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape status %d", resp.StatusCode)
					return
				}
				_ = strings.Contains(string(body), "matrix_") // exercise the payload
			}
		}()
	}

	_, err = Run(spec, Options{
		Workers: 4,
		Obs:     obs.NewWith(reg, nil),
		Prof:    span.New(span.Options{Registry: reg, Runtime: &span.Sampler{}}),
	})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// The final scrape must expose the span aggregates the run produced.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "matrix_span_matrix_rep") &&
		!strings.Contains(string(body), "matrix.span.matrix.rep") {
		t.Errorf("scrape is missing the matrix.span.matrix.rep aggregate;\n%s", body)
	}
}
