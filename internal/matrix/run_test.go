package matrix

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// tinySpec exercises every runner kind at a scale a unit test can afford.
func tinySpec(t *testing.T) Spec {
	t.Helper()
	s, err := ParseSpec([]byte(`{
	  "name": "tiny",
	  "schedulers": ["sunflow", "varys", "solstice"],
	  "ports": [10],
	  "deltas_ms": [10],
	  "workloads": [{"name": "tiny", "coflows": 6, "max_width": 3}],
	  "replications": 3,
	  "seed": 1,
	  "bootstrap_resamples": 200
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunShapeAndAggregates(t *testing.T) {
	res, err := Run(tinySpec(t), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(res.Cells))
	}
	for _, c := range res.Cells {
		if len(c.Reps) != 3 {
			t.Fatalf("cell %d has %d reps", c.Index, len(c.Reps))
		}
		for r, rep := range c.Reps {
			if rep.Seed != int64(1+r) {
				t.Errorf("cell %d rep %d seed = %d", c.Index, r, rep.Seed)
			}
			if rep.Completed != 6 {
				t.Errorf("cell %d rep %d completed %d of 6 Coflows", c.Index, r, rep.Completed)
			}
			if rep.AvgCCT <= 0 || rep.P95CCT < rep.AvgCCT/10 {
				t.Errorf("cell %d rep %d implausible CCTs: %+v", c.Index, r, rep)
			}
		}
		agg := c.AvgCCT
		if !(agg.T.Lo <= agg.Mean && agg.Mean <= agg.T.Hi) {
			t.Errorf("cell %d: mean %v outside its own t-interval [%v, %v]", c.Index, agg.Mean, agg.T.Lo, agg.T.Hi)
		}
		if !(agg.Boot.Lo <= agg.Boot.Hi) {
			t.Errorf("cell %d: inverted bootstrap interval", c.Index)
		}
		if len(c.Digest) != 64 {
			t.Errorf("cell %d: digest %q is not hex sha256", c.Index, c.Digest)
		}
		// Circuit schedulers must report switching and duty; packet must not.
		switch c.Scheduler {
		case "sunflow", "solstice":
			if c.Switches.Mean <= 0 || c.DutyCycle.Mean <= 0 {
				t.Errorf("%s: expected circuit activity, got switches %v duty %v", c.Scheduler, c.Switches.Mean, c.DutyCycle.Mean)
			}
		case "varys":
			if c.Switches.Mean != 0 {
				t.Errorf("varys reported %v circuit switches", c.Switches.Mean)
			}
		}
	}
	// 3 schedulers on 1 scenario → 3 pairwise speedups, paired on all 3 seeds.
	if len(res.Speedups) != 3 {
		t.Fatalf("got %d speedups, want 3", len(res.Speedups))
	}
	for _, s := range res.Speedups {
		if s.Pairs != 3 || s.Ratio.Mean <= 0 {
			t.Errorf("speedup %s/%s: %+v", s.Numerator, s.Denominator, s)
		}
	}
}

// TestRunDeterministic is the unit-level version of CI's matrix-smoke gate:
// two runs of the same spec must serialize to byte-identical JSONL,
// regardless of worker count.
func TestRunDeterministic(t *testing.T) {
	spec := tinySpec(t)
	var bufs [2]bytes.Buffer
	for i := range bufs {
		res, err := Run(spec, Options{Workers: 1 + i*3})
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteJSONL(&bufs[i], res); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		a, b := bufs[0].String(), bufs[1].String()
		la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				t.Fatalf("JSONL diverges at line %d:\n  run1: %.200s\n  run2: %.200s", i+1, la[i], lb[i])
			}
		}
		t.Fatal("JSONL runs differ in length")
	}
}

func TestRunSeedChangesDigests(t *testing.T) {
	spec := tinySpec(t)
	a, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 99
	b, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cells[0].Digest == b.Cells[0].Digest {
		t.Error("different seeds must change the cell digest")
	}
}

// TestRunShardWorkersInvariant runs one sunflow scenario across the
// shard-workers axis: every cell must report replication rows identical to
// the serial (shard_workers=1) cell's — sharding is an execution strategy
// and must not change a single reported float.
func TestRunShardWorkersInvariant(t *testing.T) {
	s, err := ParseSpec([]byte(`{
	  "name": "shard",
	  "schedulers": ["sunflow"],
	  "ports": [12],
	  "deltas_ms": [10],
	  "workloads": [{"name": "tiny", "coflows": 12, "max_width": 3}],
	  "shard_workers": [1, 2, 4],
	  "replications": 2,
	  "seed": 1,
	  "bootstrap_resamples": 200
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(res.Cells))
	}
	serial := res.Cells[0]
	if serial.ShardWorkers != 1 {
		t.Fatalf("cell 0 has shard_workers %d, want the serial cell first", serial.ShardWorkers)
	}
	for _, c := range res.Cells[1:] {
		if !reflect.DeepEqual(c.Reps, serial.Reps) {
			t.Errorf("shard_workers=%d reps diverge from serial:\n  sharded: %+v\n  serial:  %+v",
				c.ShardWorkers, c.Reps, serial.Reps)
		}
		if c.Key() != serial.Key() {
			t.Errorf("shard_workers=%d changed the scenario key: %q vs %q", c.ShardWorkers, c.Key(), serial.Key())
		}
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	if _, err := Run(Spec{Schedulers: []string{"nope"}, Replications: 1}, Options{}); err == nil {
		t.Error("invalid spec must be rejected by Run, not executed")
	}
}

func TestFormatMentionsCellsAndSpeedups(t *testing.T) {
	res, err := Run(tinySpec(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := Format(res)
	for _, want := range []string{"sunflow", "varys", "solstice", "Pairwise speedups", "tiny"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

// TestRunCancelBeforeStart is the degenerate truncation case: a Cancel that
// fired before the first replication skips everything and still returns a
// well-formed (empty) truncated Result instead of an error.
func TestRunCancelBeforeStart(t *testing.T) {
	spec := tinySpec(t)
	cancel := make(chan struct{})
	close(cancel)
	res, err := Run(spec, Options{Cancel: cancel})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("pre-closed Cancel must mark the result truncated")
	}
	if len(res.Cells) != 0 || res.DroppedCells != 3 {
		t.Errorf("got %d cells, %d dropped; want 0 and 3", len(res.Cells), res.DroppedCells)
	}
	if want := 3 * spec.Replications; res.SkippedRuns != want {
		t.Errorf("skipped %d runs, want %d", res.SkippedRuns, want)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"truncated"`) {
		t.Error("truncated JSONL must end with a truncation marker line")
	}
	if !strings.Contains(Format(res), "TRUNCATED") {
		t.Error("Format must flag a truncated run")
	}
}

// TestRunCancelMidRunKeepsCompleteCells cancels after the first cell's
// replications finish (serial workers make the cut deterministic): the
// complete cell must survive with aggregates and a digest identical to an
// uninterrupted run's, and the partial remainder must be dropped, not
// aggregated over zero rows.
func TestRunCancelMidRunKeepsCompleteCells(t *testing.T) {
	spec := tinySpec(t)
	full, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	res, err := Run(spec, Options{
		Workers: -1, // serial: jobs run in (cell, rep) order
		Logf: func(string, ...any) {
			// Logf fires once per completed cell worth of replications; the
			// first firing means cell 0 is fully replicated.
			select {
			case <-cancel:
			default:
				close(cancel)
			}
		},
		Cancel: cancel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.SkippedRuns == 0 {
		t.Fatalf("expected a truncated run with skipped jobs, got %+v", res)
	}
	if len(res.Cells) == 0 {
		t.Fatal("the fully replicated cell must survive truncation")
	}
	for i, c := range res.Cells {
		if c.Digest != full.Cells[i].Digest {
			t.Errorf("cell %d: truncated-run digest %s != uninterrupted %s — surviving cells must be byte-identical", i, c.Digest, full.Cells[i].Digest)
		}
	}
	if len(res.Cells)+res.DroppedCells != len(full.Cells) {
		t.Errorf("cells %d + dropped %d != total %d", len(res.Cells), res.DroppedCells, len(full.Cells))
	}
}
