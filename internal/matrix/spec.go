// Package matrix is the declarative experiment-matrix engine: a scenario
// spec (JSON, see docs/MATRIX.md and examples/matrix/) declares axes —
// schedulers, fabric sizes, reconfiguration delays δ, link bandwidths,
// workload shapes, fault rates — plus a replication count and base seed. The
// engine expands the cartesian product into cells, executes every
// (cell, replication) pair on the bench worker pool, and aggregates each
// cell's replications with the internal/stats estimators: sample stddev,
// Student-t and bootstrap confidence intervals, and pairwise scheduler
// speedup ratios paired by seed.
//
// Everything downstream of the spec is deterministic: replication r of every
// cell runs on seed Spec.Seed+r (so schedulers compare on identical
// workloads), the bootstrap is seeded from the cell index, and the JSONL
// cell rows digest identically across runs — the property CI's
// matrix-smoke job gates on.
package matrix

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"sunflow/internal/trace"
)

// Schedulers the engine knows how to run. "varys" is the packet-switched
// Varys-style baseline; the rest drive the optical fabric.
var knownSchedulers = []string{"sunflow", "solstice", "tms", "edmond", "varys"}

// faultCapable marks the schedulers that run inside a fault-injecting
// simulator; the serialized decomposition baselines (solstice, tms, edmond)
// replay schedules through the fabric executor, which has no fault model.
var faultCapable = map[string]bool{"sunflow": true, "varys": true}

// shardCapable marks the schedulers with a sharded runner
// (sim.RunCircuitSharded); sharding other schedulers' cells would silently
// fall back to serial and report duplicate rows.
var shardCapable = map[string]bool{"sunflow": true}

// WorkloadAxis is one point of the workload axis: a named shape of the
// Facebook-like generated trace.
type WorkloadAxis struct {
	// Name labels the workload in reports; it must be unique within the
	// spec. Empty defaults to "w<index>".
	Name string `json:"name,omitempty"`
	// Coflows is the trace size. Zero selects the paper's 526.
	Coflows int `json:"coflows,omitempty"`
	// MaxWidth caps shuffle fan-in/out. Zero selects the generator default.
	MaxWidth int `json:"max_width,omitempty"`
	// Dist selects the workload distribution: "facebook" (the default),
	// "google", or "incast" (see trace.KnownDists).
	Dist string `json:"dist,omitempty"`
}

// Spec declares one experiment matrix. Unset axes collapse to a single
// default point, so a spec can sweep only what it cares about.
type Spec struct {
	// Name titles the run's report and JSONL rows.
	Name string `json:"name"`
	// Description is carried into the report header verbatim.
	Description string `json:"description,omitempty"`

	// Schedulers is the scheduler axis; values from
	// {sunflow, solstice, tms, edmond, varys}. Required.
	Schedulers []string `json:"schedulers"`
	// Ports is the fabric-size axis. Empty selects {150}.
	Ports []int `json:"ports,omitempty"`
	// DeltasMs is the reconfiguration-delay axis in milliseconds. Empty
	// selects {10}.
	DeltasMs []float64 `json:"deltas_ms,omitempty"`
	// LinkGbps is the link-bandwidth axis. Empty selects {1}.
	LinkGbps []float64 `json:"link_gbps,omitempty"`
	// Workloads is the workload axis. Empty selects one default workload.
	Workloads []WorkloadAxis `json:"workloads,omitempty"`
	// FaultRates is the fault-plan axis (bench.ResiliencePlan rates in
	// [0, 1)). Empty selects {0} (fault-free). Non-zero rates require every
	// scheduler on the axis to be fault-capable (sunflow, varys).
	FaultRates []float64 `json:"fault_rates,omitempty"`
	// ShardWorkers is the sharded-execution axis: worker counts handed to
	// sim.RunCircuitSharded. Empty selects {1} (the serial runner). Values
	// above 1 require every scheduler on the axis to be shard-capable
	// (sunflow); sharding is bit-invariant, so cells differing only in the
	// worker count must report identical replication rows — the smoke spec's
	// CI gate asserts exactly that.
	ShardWorkers []int `json:"shard_workers,omitempty"`

	// Replications is the number of seeded runs per cell. Required, ≥ 1;
	// replication r uses seed Seed+r in every cell.
	Replications int `json:"replications"`
	// Seed is the base workload seed. Zero is a valid (and the default)
	// base.
	Seed int64 `json:"seed,omitempty"`

	// Confidence is the two-sided CI level for the aggregates. Zero selects
	// 0.95.
	Confidence float64 `json:"confidence,omitempty"`
	// BootstrapResamples sizes the percentile bootstrap. Zero selects 1000.
	BootstrapResamples int `json:"bootstrap_resamples,omitempty"`
}

// Cell is one point of the expanded cartesian product.
type Cell struct {
	Index     int          `json:"cell"`
	Scheduler string       `json:"scheduler"`
	Ports     int          `json:"ports"`
	DeltaMs   float64      `json:"delta_ms"`
	LinkGbps  float64      `json:"link_gbps"`
	Workload  WorkloadAxis `json:"workload"`
	FaultRate float64      `json:"fault_rate"`
	// ShardWorkers is the sharded-execution worker count (1 = serial runner).
	ShardWorkers int `json:"shard_workers,omitempty"`
}

// Key identifies the cell's scenario (everything but the scheduler): cells
// sharing a Key are the comparison group pairwise speedups are computed
// within. ShardWorkers is excluded too — sharding is an execution strategy,
// not a scenario parameter, and must not change any number it reports.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/ports=%d/delta=%gms/link=%gG/fail=%g",
		c.Workload.Name, c.Ports, c.DeltaMs, c.LinkGbps, c.FaultRate)
}

// ParseSpec decodes and validates a JSON spec.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("matrix: decode spec: %w", err)
	}
	if dec.More() {
		return s, fmt.Errorf("matrix: trailing data after spec object")
	}
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// ReadSpec decodes and validates a JSON spec from r.
func ReadSpec(r io.Reader) (Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Spec{}, fmt.Errorf("matrix: read spec: %w", err)
	}
	return ParseSpec(data)
}

// LoadSpec decodes and validates the JSON spec file at path.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("matrix: %w", err)
	}
	return ParseSpec(data)
}

// withDefaults fills unset axes with their single default point.
func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "matrix"
	}
	if len(s.Ports) == 0 {
		s.Ports = []int{150}
	}
	if len(s.DeltasMs) == 0 {
		s.DeltasMs = []float64{10}
	}
	if len(s.LinkGbps) == 0 {
		s.LinkGbps = []float64{1}
	}
	if len(s.Workloads) == 0 {
		s.Workloads = []WorkloadAxis{{}}
	}
	for i := range s.Workloads {
		if s.Workloads[i].Name == "" {
			s.Workloads[i].Name = fmt.Sprintf("w%d", i)
		}
	}
	if len(s.FaultRates) == 0 {
		s.FaultRates = []float64{0}
	}
	if len(s.ShardWorkers) == 0 {
		s.ShardWorkers = []int{1}
	}
	if s.Confidence == 0 {
		s.Confidence = 0.95
	}
	if s.BootstrapResamples == 0 {
		s.BootstrapResamples = 1000
	}
	return s
}

// Validate checks axis names, axis values, and replication structure. It
// rejects duplicate values on any axis: a duplicated value would expand into
// duplicate cells whose digests collide, which is always a spec typo.
func (s Spec) Validate() error {
	if len(s.Schedulers) == 0 {
		return fmt.Errorf("matrix: spec %q: schedulers axis is empty", s.Name)
	}
	seenSched := map[string]bool{}
	for _, name := range s.Schedulers {
		if !isKnownScheduler(name) {
			return fmt.Errorf("matrix: spec %q: unknown scheduler %q (want one of %s)",
				s.Name, name, strings.Join(knownSchedulers, ", "))
		}
		if seenSched[name] {
			return fmt.Errorf("matrix: spec %q: duplicate scheduler %q would expand into duplicate cells", s.Name, name)
		}
		seenSched[name] = true
	}
	if s.Replications < 1 {
		return fmt.Errorf("matrix: spec %q: replications must be ≥ 1, got %d", s.Name, s.Replications)
	}
	if s.Confidence <= 0 || s.Confidence >= 1 {
		return fmt.Errorf("matrix: spec %q: confidence must be in (0, 1), got %g", s.Name, s.Confidence)
	}
	if s.BootstrapResamples < 0 {
		return fmt.Errorf("matrix: spec %q: bootstrap_resamples must be ≥ 0, got %d", s.Name, s.BootstrapResamples)
	}

	seenPorts := map[int]bool{}
	for _, p := range s.Ports {
		if p <= 0 {
			return fmt.Errorf("matrix: spec %q: ports must be positive, got %d", s.Name, p)
		}
		if seenPorts[p] {
			return fmt.Errorf("matrix: spec %q: duplicate ports value %d would expand into duplicate cells", s.Name, p)
		}
		seenPorts[p] = true
	}
	seenDelta := map[float64]bool{}
	for _, d := range s.DeltasMs {
		if d <= 0 {
			return fmt.Errorf("matrix: spec %q: deltas_ms must be positive, got %g", s.Name, d)
		}
		if seenDelta[d] {
			return fmt.Errorf("matrix: spec %q: duplicate deltas_ms value %g would expand into duplicate cells", s.Name, d)
		}
		seenDelta[d] = true
	}
	seenLink := map[float64]bool{}
	for _, g := range s.LinkGbps {
		if g <= 0 {
			return fmt.Errorf("matrix: spec %q: link_gbps must be positive, got %g", s.Name, g)
		}
		if seenLink[g] {
			return fmt.Errorf("matrix: spec %q: duplicate link_gbps value %g would expand into duplicate cells", s.Name, g)
		}
		seenLink[g] = true
	}
	seenWl := map[string]bool{}
	for _, w := range s.Workloads {
		if w.Coflows < 0 || w.MaxWidth < 0 {
			return fmt.Errorf("matrix: spec %q: workload %q has negative size", s.Name, w.Name)
		}
		if !trace.ValidDist(w.Dist) {
			return fmt.Errorf("matrix: spec %q: workload %q has unknown distribution %q (want one of %s)",
				s.Name, w.Name, w.Dist, strings.Join(trace.KnownDists, ", "))
		}
		if seenWl[w.Name] {
			return fmt.Errorf("matrix: spec %q: duplicate workload name %q would expand into duplicate cells", s.Name, w.Name)
		}
		seenWl[w.Name] = true
	}
	seenFault := map[float64]bool{}
	for _, f := range s.FaultRates {
		if f < 0 || f >= 1 {
			return fmt.Errorf("matrix: spec %q: fault_rates must be in [0, 1), got %g", s.Name, f)
		}
		if seenFault[f] {
			return fmt.Errorf("matrix: spec %q: duplicate fault_rates value %g would expand into duplicate cells", s.Name, f)
		}
		seenFault[f] = true
		if f > 0 {
			for _, name := range s.Schedulers {
				if !faultCapable[name] {
					return fmt.Errorf("matrix: spec %q: fault rate %g requires fault-capable schedulers; %q replays through the fault-free fabric executor", s.Name, f, name)
				}
			}
		}
	}
	seenShard := map[int]bool{}
	for _, w := range s.ShardWorkers {
		if w < 1 {
			return fmt.Errorf("matrix: spec %q: shard_workers must be ≥ 1, got %d", s.Name, w)
		}
		if seenShard[w] {
			return fmt.Errorf("matrix: spec %q: duplicate shard_workers value %d would expand into duplicate cells", s.Name, w)
		}
		seenShard[w] = true
		if w > 1 {
			for _, name := range s.Schedulers {
				if !shardCapable[name] {
					return fmt.Errorf("matrix: spec %q: shard_workers %d requires shard-capable schedulers; %q has no sharded runner", s.Name, w, name)
				}
			}
		}
	}
	return nil
}

// Expand returns the cartesian product of the spec's axes in deterministic
// order: workload, ports, δ, bandwidth, fault rate, shard workers, scheduler.
// The scheduler axis varies fastest so one scenario's comparison group is
// contiguous.
func (s Spec) Expand() []Cell {
	var cells []Cell
	for _, w := range s.Workloads {
		for _, p := range s.Ports {
			for _, d := range s.DeltasMs {
				for _, g := range s.LinkGbps {
					for _, f := range s.FaultRates {
						for _, sw := range s.ShardWorkers {
							for _, sched := range s.Schedulers {
								cells = append(cells, Cell{
									Index:        len(cells),
									Scheduler:    sched,
									Ports:        p,
									DeltaMs:      d,
									LinkGbps:     g,
									Workload:     w,
									FaultRate:    f,
									ShardWorkers: sw,
								})
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// Runs returns the total number of simulator runs the spec expands into.
func (s Spec) Runs() int {
	return len(s.Expand()) * s.Replications
}

func isKnownScheduler(name string) bool {
	i := sort.SearchStrings(sortedSchedulers, name)
	return i < len(sortedSchedulers) && sortedSchedulers[i] == name
}

var sortedSchedulers = func() []string {
	out := append([]string(nil), knownSchedulers...)
	sort.Strings(out)
	return out
}()
