// Package procstat reads process self-statistics used by the scale gates.
package procstat

import (
	"os"
	"strconv"
	"strings"
)

// PeakRSSMB returns the process's high-water resident set size in megabytes,
// read from /proc/self/status (VmHWM). On platforms without procfs it
// returns 0, and callers should skip RSS budgeting.
func PeakRSSMB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
