package hybrid

import (
	"math"
	"testing"

	"sunflow/internal/coflow"
	"sunflow/internal/sim"
)

const gbps = 1e9

func workload() []*coflow.Coflow {
	return []*coflow.Coflow{
		coflow.New(1, 0, []coflow.Flow{
			{Src: 0, Dst: 1, Bytes: 100e6}, // big: circuit
			{Src: 0, Dst: 2, Bytes: 0.5e6}, // small: packet
		}),
		coflow.New(2, 0.1, []coflow.Flow{
			{Src: 1, Dst: 2, Bytes: 0.2e6}, // entirely small
		}),
	}
}

func TestZeroThresholdEqualsPureCircuit(t *testing.T) {
	cs := workload()
	h, err := Run(cs, Options{Ports: 3, CircuitBps: gbps, PacketBps: gbps / 10, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	pure, err := sim.RunCircuit(cs, sim.CircuitOptions{Ports: 3, LinkBps: gbps, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range pure.CCT {
		if math.Abs(h.CCT[id]-want) > 1e-9 {
			t.Fatalf("coflow %d: hybrid %v != pure circuit %v", id, h.CCT[id], want)
		}
	}
	if h.PacketBytes != 0 {
		t.Fatalf("PacketBytes = %v with zero threshold", h.PacketBytes)
	}
}

func TestSmallFlowsAvoidCircuitDelta(t *testing.T) {
	cs := workload()
	h, err := Run(cs, Options{
		Ports: 3, CircuitBps: gbps, PacketBps: gbps / 10, Delta: 0.01,
		ThresholdBytes: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Coflow 2 is one 0.2 MB flow: on the packet path at B/10 it takes
	// 16 ms, with no δ — faster than δ + p on the circuit (11.6 ms + queue
	// wait? Here 0.016 vs 0.0116; the win appears under circuit contention).
	if _, ok := h.Packet.CCT[2]; !ok {
		t.Fatal("coflow 2 should ride the packet network")
	}
	if h.PacketBytes != 0.7e6 {
		t.Fatalf("PacketBytes = %v, want 0.7e6", h.PacketBytes)
	}
	if h.CircuitBytes != 100e6 {
		t.Fatalf("CircuitBytes = %v, want 100e6", h.CircuitBytes)
	}
	// Coflow 1's CCT is the max of its two halves.
	want := math.Max(h.Circuit.CCT[1], h.Packet.CCT[1])
	if math.Abs(h.CCT[1]-want) > 1e-12 {
		t.Fatalf("combined CCT %v != max of parts %v", h.CCT[1], want)
	}
}

func TestAllPacket(t *testing.T) {
	cs := workload()
	h, err := Run(cs, Options{
		Ports: 3, CircuitBps: gbps, PacketBps: gbps, Delta: 0.01,
		ThresholdBytes: math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.CircuitBytes != 0 {
		t.Fatalf("CircuitBytes = %v", h.CircuitBytes)
	}
	if len(h.CCT) != 2 {
		t.Fatalf("CCT = %v", h.CCT)
	}
}

func TestHybridHelpsUnderContention(t *testing.T) {
	// A long transfer monopolizes the circuit port pair; a tiny flow on the
	// same pair finishes far sooner via the packet path.
	cs := []*coflow.Coflow{
		coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 500e6}}),
		coflow.New(2, 0.1, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 0.5e6}}),
	}
	pure, err := sim.RunCircuit(cs, sim.CircuitOptions{Ports: 1, LinkBps: gbps, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Run(cs, Options{
		Ports: 1, CircuitBps: gbps, PacketBps: gbps / 10, Delta: 0.01,
		ThresholdBytes: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.CCT[2] >= pure.CCT[2] {
		t.Fatalf("hybrid CCT %v should beat pure circuit %v for the tiny flow", h.CCT[2], pure.CCT[2])
	}
	// The big transfer is unaffected.
	if math.Abs(h.CCT[1]-pure.CCT[1]) > 1e-9 {
		t.Fatalf("big coflow changed: %v vs %v", h.CCT[1], pure.CCT[1])
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(nil, Options{Ports: 1, CircuitBps: 0}); err == nil {
		t.Fatal("zero circuit bandwidth accepted")
	}
	if _, err := Run(nil, Options{Ports: 1, CircuitBps: gbps, ThresholdBytes: 1}); err == nil {
		t.Fatal("threshold without packet bandwidth accepted")
	}
}

func TestEmptyCoflowCompletesImmediately(t *testing.T) {
	cs := []*coflow.Coflow{coflow.New(7, 1, nil)}
	h, err := Run(cs, Options{Ports: 1, CircuitBps: gbps, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if h.CCT[7] != 0 {
		t.Fatalf("empty coflow CCT = %v", h.CCT[7])
	}
}
