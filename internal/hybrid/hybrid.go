// Package hybrid simulates a REACToR-style hybrid fabric (§6 of the Sunflow
// paper, and the c-Through/Helios deployments of §2.1): a Sunflow-scheduled
// optical circuit switch carries the bulk traffic while a small-bandwidth
// electrical packet network absorbs flows too small to be worth a circuit.
//
// Each Coflow is split at a size threshold: flows below it travel the packet
// network, the rest the circuit network. Both partitions keep the Coflow's
// identity, so its completion time is the later of its two halves — exactly
// the semantics of a host NIC spraying small flows onto the packet path.
package hybrid

import (
	"fmt"
	"math"

	"sunflow/internal/coflow"
	"sunflow/internal/fabric"
	"sunflow/internal/fault"
	"sunflow/internal/obs"
	"sunflow/internal/sim"
)

// Options configures the hybrid fabric.
type Options struct {
	// Ports is the fabric size (both networks attach to every ToR).
	Ports int
	// CircuitBps is the per-port bandwidth of the optical circuit switch.
	CircuitBps float64
	// PacketBps is the per-port bandwidth of the companion packet switch —
	// typically a small fraction of CircuitBps.
	PacketBps float64
	// Delta is the circuit reconfiguration delay δ in seconds.
	Delta float64
	// ThresholdBytes routes flows strictly smaller than this to the packet
	// network. Zero sends everything to the circuit switch;
	// math.Inf(1) sends everything to the packet switch.
	ThresholdBytes float64
	// PacketAlloc allocates rates on the packet network; nil selects
	// per-flow max-min fair sharing (the packet path is not Coflow-aware in
	// REACToR).
	PacketAlloc fabric.RateAllocator
	// Circuit carries additional circuit-side options.
	Circuit sim.CircuitOptions
	// Obs optionally observes both partitions: the circuit partition under
	// the "circuit" scope and the packet partition under the "packet" scope.
	// An explicitly set Circuit.Obs takes precedence for the circuit side.
	// Nil disables instrumentation.
	Obs *obs.Observer
	// Faults optionally injects port outages, setup failures and degraded
	// rates into both partitions (the fabric shares its ToR ports). An
	// explicitly set Circuit.Faults takes precedence for the circuit side.
	Faults *fault.Plan
}

// Result reports a hybrid run: the combined per-Coflow CCTs plus the two
// partitions for inspection.
type Result struct {
	// CCT maps Coflow id to max(circuit part, packet part) completion time
	// minus arrival.
	CCT map[int]float64
	// CircuitBytes and PacketBytes report the byte split.
	CircuitBytes, PacketBytes float64
	// Circuit and Packet are the partition results (ids appear only in the
	// partitions that carried any of their demand).
	Circuit, Packet sim.Result
	// Partial merges the partitions' stranded-flow reports; nil when no flow
	// was quarantined. A Coflow stranded in either partition has no CCT.
	Partial *sim.PartialResult
}

// AverageCCT returns the mean combined CCT.
func (r Result) AverageCCT() float64 {
	if len(r.CCT) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.CCT {
		sum += v
	}
	return sum / float64(len(r.CCT))
}

// Run splits the workload at the threshold and simulates both networks.
func Run(coflows []*coflow.Coflow, opts Options) (Result, error) {
	res := Result{CCT: map[int]float64{}}
	if opts.CircuitBps <= 0 {
		return res, fmt.Errorf("hybrid: circuit bandwidth must be positive, got %v", opts.CircuitBps)
	}
	if opts.ThresholdBytes > 0 && opts.PacketBps <= 0 {
		return res, fmt.Errorf("hybrid: packet bandwidth must be positive when a threshold routes flows to it")
	}

	var circuitPart, packetPart []*coflow.Coflow
	for _, c := range coflows {
		var big, small []coflow.Flow
		for _, f := range c.Flows {
			if f.Bytes <= 0 {
				continue
			}
			if f.Bytes < opts.ThresholdBytes {
				small = append(small, f)
				res.PacketBytes += f.Bytes
			} else {
				big = append(big, f)
				res.CircuitBytes += f.Bytes
			}
		}
		if len(big) > 0 {
			circuitPart = append(circuitPart, coflow.New(c.ID, c.Arrival, big))
		}
		if len(small) > 0 {
			packetPart = append(packetPart, coflow.New(c.ID, c.Arrival, small))
		}
		if len(big) == 0 && len(small) == 0 {
			res.CCT[c.ID] = 0
		}
	}

	copts := opts.Circuit
	copts.Ports = opts.Ports
	copts.LinkBps = opts.CircuitBps
	copts.Delta = opts.Delta
	if copts.Obs == nil {
		copts.Obs = opts.Obs.Scoped("circuit")
	}
	if copts.Faults == nil {
		copts.Faults = opts.Faults
	}
	var err error
	res.Circuit, err = sim.RunCircuit(circuitPart, copts)
	if err != nil {
		return res, fmt.Errorf("hybrid: circuit partition: %w", err)
	}

	alloc := opts.PacketAlloc
	if alloc == nil {
		alloc = fabric.FairSharing{}
	}
	if len(packetPart) > 0 {
		res.Packet, err = sim.RunPacketOpts(packetPart, sim.PacketOptions{
			Ports:   opts.Ports,
			LinkBps: opts.PacketBps,
			Alloc:   alloc,
			Obs:     opts.Obs.Scoped("packet"),
			Faults:  opts.Faults,
		})
		if err != nil {
			return res, fmt.Errorf("hybrid: packet partition: %w", err)
		}
	}

	for id, v := range res.Circuit.CCT {
		res.CCT[id] = math.Max(res.CCT[id], v)
	}
	for id, v := range res.Packet.CCT {
		res.CCT[id] = math.Max(res.CCT[id], v)
	}
	res.Partial = mergePartials(res.Circuit.Partial, res.Packet.Partial)
	if res.Partial != nil {
		// A Coflow stranded in either partition did not complete: it must
		// not report a combined CCT off its other half.
		for id := range res.Partial.Finish {
			delete(res.CCT, id)
		}
	}
	return res, nil
}

// mergePartials combines the partitions' stranded-flow reports (nil when both
// partitions served everything).
func mergePartials(a, b *sim.PartialResult) *sim.PartialResult {
	if a == nil && b == nil {
		return nil
	}
	m := &sim.PartialResult{Finish: map[int]float64{}}
	for _, p := range []*sim.PartialResult{a, b} {
		if p == nil {
			continue
		}
		m.Stranded = append(m.Stranded, p.Stranded...)
		m.Bytes += p.Bytes
		for id, f := range p.Finish {
			m.Finish[id] = math.Max(m.Finish[id], f)
		}
	}
	return m
}
