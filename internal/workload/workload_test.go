package workload

import (
	"math"
	"testing"

	"sunflow/internal/coflow"
	"sunflow/internal/trace"
)

const gbps = 1e9

func TestPerturbBoundsAndFloor(t *testing.T) {
	cs := []*coflow.Coflow{
		coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 100e6}, {Src: 0, Dst: 1, Bytes: 1e6}}),
	}
	out := Perturb(cs, 0.05, DefaultFloorBytes, 9)
	if out[0] == cs[0] {
		t.Fatal("Perturb must copy")
	}
	for i, f := range out[0].Flows {
		orig := cs[0].Flows[i].Bytes
		if f.Bytes < DefaultFloorBytes-1e-9 {
			t.Fatalf("flow below floor: %v", f.Bytes)
		}
		if f.Bytes > orig*1.05+1e-6 || (f.Bytes < orig*0.95-1e-6 && f.Bytes != DefaultFloorBytes) {
			t.Fatalf("flow %d perturbed out of ±5%%: %v from %v", i, f.Bytes, orig)
		}
	}
	// Deterministic.
	again := Perturb(cs, 0.05, DefaultFloorBytes, 9)
	for i := range out[0].Flows {
		if out[0].Flows[i].Bytes != again[0].Flows[i].Bytes {
			t.Fatal("Perturb not deterministic")
		}
	}
}

func TestScaleBytes(t *testing.T) {
	cs := []*coflow.Coflow{coflow.New(1, 2, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 10}})}
	out := ScaleBytes(cs, 2.5)
	if out[0].Flows[0].Bytes != 25 {
		t.Fatalf("scaled = %v", out[0].Flows[0].Bytes)
	}
	if cs[0].Flows[0].Bytes != 10 {
		t.Fatal("ScaleBytes mutated input")
	}
	if out[0].Arrival != 2 {
		t.Fatal("arrival changed")
	}
}

func TestIdlenessDisjoint(t *testing.T) {
	// Two 8 ms active periods separated: active 0.016 of span 1.008 →
	// idleness ≈ 0.984.
	cs := []*coflow.Coflow{
		coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}}),
		coflow.New(2, 1, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}}),
	}
	got := Idleness(cs, gbps)
	want := 1 - 0.016/1.008
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Idleness = %v, want %v", got, want)
	}
}

func TestIdlenessOverlapping(t *testing.T) {
	// Fully overlapping activity → idleness 0.
	cs := []*coflow.Coflow{
		coflow.New(1, 0, []coflow.Flow{{Src: 0, Dst: 0, Bytes: 100e6}}),
		coflow.New(2, 0.1, []coflow.Flow{{Src: 1, Dst: 1, Bytes: 10e6}}),
	}
	if got := Idleness(cs, gbps); got != 0 {
		t.Fatalf("Idleness = %v, want 0", got)
	}
}

func TestIdlenessEmpty(t *testing.T) {
	if got := Idleness(nil, gbps); got != 1 {
		t.Fatalf("Idleness(empty) = %v, want 1", got)
	}
}

func TestIdlenessMonotoneInScale(t *testing.T) {
	tr := trace.Generator{Seed: 4, Coflows: 100}.Trace()
	i1 := Idleness(tr.Coflows, gbps)
	i2 := Idleness(ScaleBytes(tr.Coflows, 10), gbps)
	if i2 > i1 {
		t.Fatalf("idleness rose with more bytes: %v -> %v", i1, i2)
	}
}

func TestScaleToIdleness(t *testing.T) {
	tr := trace.Generator{Seed: 4, Coflows: 150}.Trace()
	for _, target := range []float64{0.12, 0.20, 0.40, 0.81} {
		factor, scaled, err := ScaleToIdleness(tr.Coflows, gbps, target)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if factor <= 0 {
			t.Fatalf("factor = %v", factor)
		}
		got := Idleness(scaled, gbps)
		if math.Abs(got-target) > 0.02 {
			t.Fatalf("target %v: achieved %v (factor %v)", target, got, factor)
		}
	}
}

func TestScaleToIdlenessRejectsBadTarget(t *testing.T) {
	if _, _, err := ScaleToIdleness(nil, gbps, 1.5); err == nil {
		t.Fatal("target > 1 accepted")
	}
	if _, _, err := ScaleToIdleness(nil, gbps, 0); err == nil {
		t.Fatal("target 0 accepted")
	}
}
