package workload

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sunflow/internal/coflow"
	"sunflow/internal/trace"
)

// refScaleToIdleness is the pre-optimization ScaleToIdleness: it clones and
// rescales the whole workload at every bisection step. The fast path must
// reproduce its factor bit for bit.
func refScaleToIdleness(coflows []*coflow.Coflow, linkBps, target float64) (float64, []*coflow.Coflow, error) {
	if target <= 0 || target >= 1 {
		return 0, nil, fmt.Errorf("workload: idleness target must be in (0,1), got %v", target)
	}
	lo, hi := 1e-9, 1e9
	if Idleness(ScaleBytes(coflows, lo), linkBps) < target {
		return 0, nil, fmt.Errorf("workload: cannot reach idleness %.2f (even factor %g is too busy)", target, lo)
	}
	if Idleness(ScaleBytes(coflows, hi), linkBps) > target {
		return 0, nil, fmt.Errorf("workload: cannot reach idleness %.2f (even factor %g is too idle)", target, hi)
	}
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(lo * hi)
		if Idleness(ScaleBytes(coflows, mid), linkBps) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	factor := math.Sqrt(lo * hi)
	return factor, ScaleBytes(coflows, factor), nil
}

// randomWorkload draws a small irregular workload: generated Coflows plus
// hand-built ones with shared ports, duplicate arrivals and zero-byte flows,
// the structures where span bookkeeping could diverge.
func randomWorkload(rng *rand.Rand) []*coflow.Coflow {
	tr := trace.Generator{
		Ports:      2 + rng.Intn(10),
		Coflows:    1 + rng.Intn(30),
		HorizonSec: 0.5 + 5*rng.Float64(),
		Seed:       rng.Int63(),
		MaxWidth:   2 + rng.Intn(5),
	}.Trace()
	cs := tr.Coflows
	for extra := rng.Intn(4); extra > 0; extra-- {
		var flows []coflow.Flow
		for n := 1 + rng.Intn(5); n > 0; n-- {
			b := float64(rng.Intn(3)) * float64(1+rng.Intn(1000)) * 1e4 // 0 one time in 3
			flows = append(flows, coflow.Flow{Src: rng.Intn(4), Dst: rng.Intn(4), Bytes: b})
		}
		arrival := float64(rng.Intn(3)) // collide arrivals on purpose
		cs = append(cs, coflow.New(1000+extra, arrival, flows))
	}
	return cs
}

// TestQuickIdlenessEvalExact checks the span evaluator against the
// materializing path at exact float equality, across factors spanning the
// whole bisection range.
func TestQuickIdlenessEvalExact(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomWorkload(rng)
		ev := newIdlenessEval(cs, gbps)
		factors := []float64{1e-9, 1e-6, 1e-3, 1, 1e3, 1e9}
		for i := 0; i < 6; i++ {
			factors = append(factors, math.Exp((rng.Float64()*2-1)*20))
		}
		for _, f := range factors {
			want := Idleness(ScaleBytes(cs, f), gbps)
			got := ev.at(f)
			if got != want {
				t.Fatalf("seed %d factor %g: eval %v, materialized %v", seed, f, got, want)
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScaleToIdlenessMatchesReference runs the full bisection both ways
// and demands an identical factor and identical scaled Coflows.
func TestQuickScaleToIdlenessMatchesReference(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomWorkload(rng)
		target := 0.05 + 0.9*rng.Float64()

		wantF, wantCs, wantErr := refScaleToIdleness(cs, gbps, target)
		gotF, gotCs, gotErr := ScaleToIdleness(cs, gbps, target)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d target %v: ref err %v, fast err %v", seed, target, wantErr, gotErr)
		}
		if wantErr != nil {
			return wantErr.Error() == gotErr.Error()
		}
		if gotF != wantF {
			t.Fatalf("seed %d target %v: factor %v, want %v", seed, target, gotF, wantF)
		}
		if !reflect.DeepEqual(gotCs, wantCs) {
			t.Fatalf("seed %d target %v: scaled workloads diverge", seed, target)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
