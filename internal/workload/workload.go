// Package workload contains the workload transformations of the Sunflow
// paper's evaluation settings (§5.1 and §5.4): the ±5% flow-size
// perturbation with a 1 MB floor, the network-idleness metric, and byte
// scaling to reach a target idleness while preserving every Coflow's
// structure.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sunflow/internal/coflow"
)

// DefaultFloorBytes is the 1 MB lower bound applied after perturbation — the
// smallest flow size in the trace, which fixes α ≤ 1.25 at B = 1 Gbps and
// δ = 10 ms (Lemma 2).
const DefaultFloorBytes = 1e6

// Perturb returns copies of the Coflows with every flow size multiplied by a
// uniform factor in [1-frac, 1+frac] and floored at floorBytes, as §5.1
// prescribes with frac = 0.05 to undo the trace's MB rounding. The
// perturbation is deterministic in seed.
func Perturb(coflows []*coflow.Coflow, frac, floorBytes float64, seed int64) []*coflow.Coflow {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*coflow.Coflow, len(coflows))
	for i, c := range coflows {
		nc := c.Clone()
		for k := range nc.Flows {
			if nc.Flows[k].Bytes <= 0 {
				continue
			}
			factor := 1 + frac*(2*rng.Float64()-1)
			b := nc.Flows[k].Bytes * factor
			if b < floorBytes {
				b = floorBytes
			}
			nc.Flows[k].Bytes = b
		}
		out[i] = nc
	}
	return out
}

// ScaleBytes returns copies of the Coflows with every flow size multiplied
// by factor (structure and arrivals unchanged).
func ScaleBytes(coflows []*coflow.Coflow, factor float64) []*coflow.Coflow {
	out := make([]*coflow.Coflow, len(coflows))
	for i, c := range coflows {
		nc := c.Clone()
		for k := range nc.Flows {
			nc.Flows[k].Bytes *= factor
		}
		out[i] = nc
	}
	return out
}

// span is one Coflow's activity interval [lo, hi].
type span struct{ lo, hi float64 }

// idlenessOf merges activity spans and returns the idle fraction of the
// overall horizon.
func idlenessOf(spans []span) float64 {
	if len(spans) == 0 {
		return 1
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].lo < spans[b].lo })

	first := spans[0].lo
	last := first
	busy := 0.0
	curLo, curHi := spans[0].lo, spans[0].hi
	for _, s := range spans[1:] {
		if s.lo <= curHi {
			if s.hi > curHi {
				curHi = s.hi
			}
			continue
		}
		busy += curHi - curLo
		curLo, curHi = s.lo, s.hi
	}
	busy += curHi - curLo
	if curHi > last {
		last = curHi
	}
	total := last - first
	if total <= 0 {
		return 0
	}
	return 1 - busy/total
}

// Idleness computes the network idleness metric of §5.4: a Coflow is active
// from its arrival until arrival + TpL at bandwidth linkBps, and idleness is
// the fraction of the span from the first arrival to the last activity end
// during which no Coflow is active. The metric is independent of any
// scheduling policy.
func Idleness(coflows []*coflow.Coflow, linkBps float64) float64 {
	spans := make([]span, 0, len(coflows))
	for _, c := range coflows {
		tpl := c.PacketLowerBound(linkBps)
		if tpl <= 0 {
			continue
		}
		spans = append(spans, span{lo: c.Arrival, hi: c.Arrival + tpl})
	}
	return idlenessOf(spans)
}

// idlenessEval evaluates Idleness(ScaleBytes(coflows, factor), linkBps) for
// many factors without cloning the workload: per Coflow it keeps each port
// side's flow bytes in flow order, so the scaled per-port sums — and through
// them TpL, the spans, and the idleness — come out bit-identical to the
// materializing path. One evaluation is O(total flows) with no Coflow
// allocation, which is what lets ScaleToIdleness bisect an 18-decade range on
// a million-Coflow workload without 80 full-trace clones.
type idlenessEval struct {
	coflows []coflowSpans
	linkBps float64
}

type coflowSpans struct {
	arrival float64
	// ports holds one byte sequence per (side, port) that any flow touches,
	// in flow order — exactly the additions PortSums would make.
	ports [][]float64
}

func newIdlenessEval(coflows []*coflow.Coflow, linkBps float64) *idlenessEval {
	ev := &idlenessEval{coflows: make([]coflowSpans, 0, len(coflows)), linkBps: linkBps}
	for _, c := range coflows {
		cs := coflowSpans{arrival: c.Arrival}
		idx := make(map[[2]int]int)
		for _, f := range c.Flows {
			for _, key := range [2][2]int{{0, f.Src}, {1, f.Dst}} {
				i, ok := idx[key]
				if !ok {
					i = len(cs.ports)
					idx[key] = i
					cs.ports = append(cs.ports, nil)
				}
				cs.ports[i] = append(cs.ports[i], f.Bytes)
			}
		}
		ev.coflows = append(ev.coflows, cs)
	}
	return ev
}

// at computes the idleness the workload would have with every flow size
// multiplied by factor (> 0). The positive-bytes filter is applied to the
// scaled value, as PortSums applies it after ScaleBytes.
func (e *idlenessEval) at(factor float64) float64 {
	spans := make([]span, 0, len(e.coflows))
	for _, cs := range e.coflows {
		var maxBytes float64
		for _, list := range cs.ports {
			sum := 0.0
			for _, b := range list {
				if s := b * factor; s > 0 {
					sum += s
				}
			}
			maxBytes = math.Max(maxBytes, sum)
		}
		tpl := maxBytes * 8 / e.linkBps
		if tpl <= 0 {
			continue
		}
		spans = append(spans, span{lo: cs.arrival, hi: cs.arrival + tpl})
	}
	return idlenessOf(spans)
}

// ScaleToIdleness finds (by bisection) the byte-scaling factor that brings
// the workload's idleness to target, and returns the factor together with
// the scaled Coflows. This is how §5.4 derives the 20% and 40% idleness
// settings while "preserving Coflows' structural characteristics". The
// bisection runs on a precomputed span evaluator, so only the final result is
// materialized: the search itself allocates no Coflows.
func ScaleToIdleness(coflows []*coflow.Coflow, linkBps, target float64) (float64, []*coflow.Coflow, error) {
	if target <= 0 || target >= 1 {
		return 0, nil, fmt.Errorf("workload: idleness target must be in (0,1), got %v", target)
	}
	ev := newIdlenessEval(coflows, linkBps)
	// Idleness decreases monotonically as bytes grow.
	lo, hi := 1e-9, 1e9
	if ev.at(lo) < target {
		return 0, nil, fmt.Errorf("workload: cannot reach idleness %.2f (even factor %g is too busy)", target, lo)
	}
	if ev.at(hi) > target {
		return 0, nil, fmt.Errorf("workload: cannot reach idleness %.2f (even factor %g is too idle)", target, hi)
	}
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection over 18 decades
		if ev.at(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	factor := math.Sqrt(lo * hi)
	return factor, ScaleBytes(coflows, factor), nil
}
