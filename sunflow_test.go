package sunflow

import (
	"math"
	"strings"
	"testing"

	"sunflow/internal/varys"
)

const gbps = 1e9

func exampleCoflow() *Coflow {
	return NewCoflow(1, 0, []Flow{
		{Src: 0, Dst: 2, Bytes: 64e6},
		{Src: 0, Dst: 3, Bytes: 32e6},
		{Src: 1, Dst: 2, Bytes: 16e6},
		{Src: 1, Dst: 3, Bytes: 128e6},
	})
}

func TestScheduleOne(t *testing.T) {
	c := exampleCoflow()
	sched, err := ScheduleOne(c, 4, Options{LinkBps: gbps, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	tcl := CircuitLowerBound(c, gbps, 0.01)
	if sched.CCT(0) >= 2*tcl {
		t.Fatalf("CCT %v violates Lemma 1 bound %v", sched.CCT(0), 2*tcl)
	}
	if sched.SwitchingCount() != c.NumFlows() {
		t.Fatalf("switching count %d, want %d", sched.SwitchingCount(), c.NumFlows())
	}
}

func TestScheduleAllDefaultPolicy(t *testing.T) {
	small := NewCoflow(1, 0, []Flow{{Src: 0, Dst: 1, Bytes: 1e6}})
	big := NewCoflow(2, 0, []Flow{{Src: 0, Dst: 1, Bytes: 100e6}})
	scheds, ordered, err := ScheduleAll([]*Coflow{big, small}, 2, Options{LinkBps: gbps, Delta: 0.01}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ordered[0].ID != 1 {
		t.Fatalf("shortest-first should order the small coflow first, got %d", ordered[0].ID)
	}
	if scheds[0].Finish > scheds[1].Finish {
		t.Fatal("higher priority coflow finished later")
	}
}

func TestSimulateBothFabrics(t *testing.T) {
	cs := []*Coflow{
		NewCoflow(1, 0, []Flow{{Src: 0, Dst: 1, Bytes: 10e6}}),
		NewCoflow(2, 0.05, []Flow{{Src: 1, Dst: 0, Bytes: 5e6}}),
	}
	circuit, err := SimulateCircuit(cs, CircuitOptions{Ports: 2, LinkBps: gbps, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	packet, err := SimulatePacket(cs, 2, gbps, varys.Allocator{})
	if err != nil {
		t.Fatal(err)
	}
	if len(circuit.CCT) != 2 || len(packet.CCT) != 2 {
		t.Fatal("both coflows must finish in both fabrics")
	}
	for id := range packet.CCT {
		if circuit.CCT[id] < packet.CCT[id]-1e-9 {
			t.Fatalf("circuit CCT for %d (%v) beat packet (%v) on disjoint flows",
				id, circuit.CCT[id], packet.CCT[id])
		}
	}
}

func TestBoundsAndClassAliases(t *testing.T) {
	c := exampleCoflow()
	if c.Classify() != ManyToMany {
		t.Fatalf("class = %v", c.Classify())
	}
	tpl := PacketLowerBound(c, gbps)
	tcl := CircuitLowerBound(c, gbps, 0.01)
	if tcl <= tpl {
		t.Fatalf("TcL %v should exceed TpL %v for δ > 0", tcl, tpl)
	}
}

func TestParseTraceAndPerturb(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader("2 1\n1 0 1 0 1 1:8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ports != 2 || len(tr.Coflows) != 1 {
		t.Fatalf("trace = %+v", tr)
	}
	out := Perturb(tr.Coflows, 0.05, 1e6, 1)
	if math.Abs(out[0].TotalBytes()-8e6) > 0.05*8e6+1 {
		t.Fatalf("perturbed bytes %v", out[0].TotalBytes())
	}
	if Idleness(tr.Coflows, gbps) != 0 {
		t.Fatalf("single coflow workload idleness should be 0")
	}
}

func TestFairWindowsAlias(t *testing.T) {
	fw := FairWindows{N: 4, T: 1, Tau: 0.1}
	if err := fw.Validate(0.01); err != nil {
		t.Fatal(err)
	}
}
