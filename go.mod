module sunflow

go 1.22
