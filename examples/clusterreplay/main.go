// Clusterreplay: replay a data-parallel cluster's Coflow trace through the
// three inter-Coflow schedulers the paper evaluates — Sunflow on an optical
// circuit switch, and Varys and Aalo on a comparable packet switch — and
// compare average Coflow completion times (§5.4).
//
// The trace is synthesized with the repository's Facebook-calibrated
// generator; pass -trace to replay a real coflow-benchmark file instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sunflow"
	"sunflow/internal/aalo"
	"sunflow/internal/stats"
	"sunflow/internal/trace"
	"sunflow/internal/varys"
	"sunflow/internal/workload"
)

func main() {
	traceFile := flag.String("trace", "", "optional coflow-benchmark trace file")
	coflows := flag.Int("coflows", 120, "synthetic trace size when no file is given")
	seed := flag.Int64("seed", 1, "synthetic trace seed")
	gbits := flag.Float64("b", 1, "link bandwidth in Gbit/s")
	delta := flag.Float64("delta", 0.01, "circuit reconfiguration delay (s)")
	idle := flag.Float64("idleness", 0.4, "scale traffic to this network idleness (0 keeps the trace as is)")
	flag.Parse()

	var tr *sunflow.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		tr, err = sunflow.ParseTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		tr = trace.Generator{Coflows: *coflows, MaxWidth: 16, Seed: *seed}.Trace()
	}
	linkBps := *gbits * 1e9

	cs := sunflow.Perturb(tr.Coflows, 0.05, 1e6, *seed+1)
	if *idle > 0 {
		factor, scaled, err := workload.ScaleToIdleness(cs, linkBps, *idle)
		if err != nil {
			log.Fatal(err)
		}
		cs = scaled
		fmt.Printf("scaled flow sizes by %.3g to reach %.0f%% network idleness\n", factor, *idle*100)
	}
	fmt.Printf("replaying %d Coflows on a %d-port fabric at %.0f Gbps (δ = %gs)\n\n",
		len(cs), tr.Ports, *gbits, *delta)

	sun, err := sunflow.SimulateCircuit(cs, sunflow.CircuitOptions{
		Ports: tr.Ports, LinkBps: linkBps, Delta: *delta,
	})
	if err != nil {
		log.Fatal(err)
	}
	vr, err := sunflow.SimulatePacket(cs, tr.Ports, linkBps, varys.Allocator{})
	if err != nil {
		log.Fatal(err)
	}
	al, err := sunflow.SimulatePacket(cs, tr.Ports, linkBps, aalo.Allocator{})
	if err != nil {
		log.Fatal(err)
	}

	print := func(name string, r sunflow.SimResult) {
		var ccts []float64
		for _, v := range r.CCT {
			ccts = append(ccts, v)
		}
		s := stats.Summarize(ccts)
		fmt.Printf("%-22s avg CCT %8.3fs   p50 %8.3fs   p95 %8.3fs\n", name, s.Avg, s.P50, s.P95)
	}
	print("Sunflow (circuit)", sun)
	print("Varys  (packet)", vr)
	print("Aalo   (packet)", al)

	fmt.Printf("\nSunflow avg CCT is %.2fx Varys and %.2fx Aalo on this workload.\n",
		sun.AverageCCT()/vr.AverageCCT(), sun.AverageCCT()/al.AverageCCT())
	fmt.Println("Under modest-to-heavy load the ratios approach 1: an OCS serves Coflows")
	fmt.Println("about as fast as a packet network, with the data-rate/energy benefits of optics.")
}
