// Quickstart: build a small Coflow, schedule it with Sunflow on a 4-port
// optical circuit switch, and compare its completion time against the
// theoretical lower bounds of the paper.
package main

import (
	"fmt"
	"log"

	"sunflow"
)

func main() {
	// A 2x2 shuffle: two senders (ports 0 and 1) each transfer to two
	// receivers (ports 2 and 3). Sizes are in bytes.
	c := sunflow.NewCoflow(1, 0, []sunflow.Flow{
		{Src: 0, Dst: 2, Bytes: 64e6},
		{Src: 0, Dst: 3, Bytes: 32e6},
		{Src: 1, Dst: 2, Bytes: 16e6},
		{Src: 1, Dst: 3, Bytes: 128e6},
	})

	opts := sunflow.Options{
		LinkBps: 1e9,  // 1 Gbps links
		Delta:   0.01, // 10 ms circuit reconfiguration (3D-MEMS)
	}

	sched, err := sunflow.ScheduleOne(c, 4, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Sunflow schedule (non-preemptive circuit reservations):")
	for _, r := range sched.Reservations {
		fmt.Printf("  circuit in.%d -> out.%d  held %7.3fs .. %7.3fs  carries %5.1f MB\n",
			r.In, r.Out, r.Start, r.End, r.Bytes/1e6)
	}

	tpl := sunflow.PacketLowerBound(c, opts.LinkBps)
	tcl := sunflow.CircuitLowerBound(c, opts.LinkBps, opts.Delta)
	fmt.Printf("\nCCT:                      %.3f s\n", sched.CCT(0))
	fmt.Printf("circuit lower bound TcL:  %.3f s  (ratio %.2f — Lemma 1 guarantees < 2)\n", tcl, sched.CCT(0)/tcl)
	fmt.Printf("packet  lower bound TpL:  %.3f s  (ratio %.2f)\n", tpl, sched.CCT(0)/tpl)
	fmt.Printf("circuit establishments:   %d (minimum possible: %d)\n",
		sched.SwitchingCount(), c.NumFlows())
}
