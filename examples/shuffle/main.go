// Shuffle: the workload the paper's introduction motivates — a MapReduce
// shuffle stage, where every mapper sends a partition to every reducer.
//
// The example builds an m×r shuffle Coflow, schedules it with Sunflow and
// with the strongest preemptive baseline, Solstice, and sweeps the circuit
// reconfiguration delay δ to show where circuit switching overhead bites
// (Figures 3 and 6 of the paper, in miniature).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sunflow"
	"sunflow/internal/fabric"
	"sunflow/internal/solstice"
)

const (
	mappers  = 8
	reducers = 8
	linkBps  = 1e9
)

func main() {
	c := shuffleCoflow(1, mappers, reducers, 64e6, 7)
	ports := mappers + reducers

	fmt.Printf("shuffle: %d mappers x %d reducers, %.0f MB total\n\n",
		mappers, reducers, c.TotalBytes()/1e6)
	fmt.Printf("%-8s  %-22s  %-22s\n", "delta", "Sunflow CCT (xTcL)", "Solstice CCT (xTcL)")

	for _, delta := range []float64{0.1, 0.01, 0.001, 0.0001} {
		tcl := sunflow.CircuitLowerBound(c, linkBps, delta)

		sun, err := sunflow.ScheduleOne(c, ports, sunflow.Options{LinkBps: linkBps, Delta: delta})
		if err != nil {
			log.Fatal(err)
		}
		sol, _, err := solstice.Run(c, ports, solstice.Options{LinkBps: linkBps, Delta: delta}, fabric.NotAllStop)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %6.3fs (%4.2fx, %3d sw)  %6.3fs (%4.2fx, %3d sw)\n",
			fmtDelta(delta),
			sun.CCT(0), sun.CCT(0)/tcl, sun.SwitchingCount(),
			sol.Finish, sol.Finish/tcl, sol.SwitchCount)
	}

	fmt.Println("\nSunflow establishes each circuit exactly once; Solstice re-establishes")
	fmt.Println("circuits across its assignment sequence and pays δ each time.")
}

// shuffleCoflow builds an m×r shuffle with log-normal-ish partition skew.
func shuffleCoflow(id, m, r int, avgBytes float64, seed int64) *sunflow.Coflow {
	rng := rand.New(rand.NewSource(seed))
	var flows []sunflow.Flow
	for i := 0; i < m; i++ {
		for j := 0; j < r; j++ {
			skew := 0.25 + 1.5*rng.Float64()
			flows = append(flows, sunflow.Flow{Src: i, Dst: m + j, Bytes: avgBytes * skew})
		}
	}
	return sunflow.NewCoflow(id, 0, flows)
}

func fmtDelta(d float64) string {
	if d >= 1e-3 {
		return fmt.Sprintf("%.0f ms", d*1e3)
	}
	return fmt.Sprintf("%.0f us", d*1e6)
}
