// Policies: the inter-Coflow scheduling framework of §4.2 in action.
//
// Three scenarios on one fabric:
//
//  1. Privileged vs regular users — a PriorityClasses policy lets the
//     privileged Coflow finish as if it were alone.
//  2. Combining same-priority Coflows — each member finishes when the merged
//     Coflow does, trading average CCT for equal chances.
//  3. Starvation avoidance — a permanently deprioritized Coflow still makes
//     progress through the recurring (T, τ) fair windows.
package main

import (
	"fmt"
	"log"

	"sunflow"
	"sunflow/internal/coflow"
)

const (
	ports   = 8
	linkBps = 1e9
	delta   = 0.01
)

func main() {
	scenarioPriorities()
	scenarioCombining()
	scenarioStarvation()
}

func scenarioPriorities() {
	fmt.Println("— privileged vs regular users —")
	privileged := sunflow.NewCoflow(1, 0, []sunflow.Flow{
		{Src: 0, Dst: 4, Bytes: 20e6},
		{Src: 1, Dst: 5, Bytes: 30e6},
	})
	regular := sunflow.NewCoflow(2, 0, []sunflow.Flow{
		{Src: 0, Dst: 4, Bytes: 200e6},
		{Src: 1, Dst: 4, Bytes: 100e6},
	})

	policy := sunflow.PriorityClasses{Class: map[int]int{1: 0, 2: 1}}
	scheds, ordered, err := sunflow.ScheduleAll(
		[]*sunflow.Coflow{regular, privileged}, ports,
		sunflow.Options{LinkBps: linkBps, Delta: delta}, policy)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range scheds {
		fmt.Printf("  coflow %d (class %d): CCT %.3fs\n", ordered[i].ID, i, s.CCT(0))
	}

	solo, err := sunflow.ScheduleOne(privileged, ports, sunflow.Options{LinkBps: linkBps, Delta: delta})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  privileged coflow alone:  CCT %.3fs (never blocked by the regular one)\n\n", solo.CCT(0))
}

func scenarioCombining() {
	fmt.Println("— combining same-priority Coflows —")
	a := sunflow.NewCoflow(10, 0, []sunflow.Flow{{Src: 0, Dst: 4, Bytes: 10e6}})
	b := sunflow.NewCoflow(11, 0, []sunflow.Flow{{Src: 0, Dst: 4, Bytes: 40e6}})

	opts := sunflow.Options{LinkBps: linkBps, Delta: delta}
	scheds, ordered, err := sunflow.ScheduleAll([]*sunflow.Coflow{a, b}, ports, opts, sunflow.FIFO{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  served individually (FIFO):")
	for i, s := range scheds {
		fmt.Printf("    coflow %d: CCT %.3fs\n", ordered[i].ID, s.CCT(0))
	}

	merged, err := coflow.Combine(12, []*sunflow.Coflow{a, b})
	if err != nil {
		log.Fatal(err)
	}
	ms, err := sunflow.ScheduleOne(merged, ports, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  combined into one Coflow: both finish at %.3fs\n", ms.CCT(0))
	fmt.Println("  (equal chance to be serviced, at the cost of average CCT — §4.2)")
	fmt.Println()
}

func scenarioStarvation() {
	fmt.Println("— starvation avoidance with (T, τ) fair windows —")
	hog := sunflow.NewCoflow(1, 0, []sunflow.Flow{{Src: 0, Dst: 0, Bytes: 2e9}}) // 16 s transfer
	victim := sunflow.NewCoflow(2, 0, []sunflow.Flow{{Src: 0, Dst: 0, Bytes: 1e6}})
	starver := sunflow.PriorityClasses{Class: map[int]int{1: 0, 2: 1}}

	base := sunflow.CircuitOptions{Ports: ports, LinkBps: linkBps, Delta: delta, Policy: starver}
	without, err := sunflow.SimulateCircuit([]*sunflow.Coflow{hog, victim}, base)
	if err != nil {
		log.Fatal(err)
	}

	fair := base
	fair.Fair = &sunflow.FairWindows{N: ports, T: 1.0, Tau: 0.05}
	with, err := sunflow.SimulateCircuit([]*sunflow.Coflow{hog, victim}, fair)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  deprioritized 1 MB Coflow behind a 16 s hog on the same circuit:\n")
	fmt.Printf("    without fair windows: CCT %6.2fs (waits for the hog)\n", without.CCT[2])
	fmt.Printf("    with fair windows:    CCT %6.2fs (served inside a τ window)\n", with.CCT[2])
	fmt.Printf("  every Coflow receives non-zero service within N(T+τ) = %.2fs\n",
		float64(ports)*(1.0+0.05))
}
