# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

# Static-analysis tool versions are pinned here so `make static` runs the
# same binaries locally and in CI; bump them deliberately, in one place.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK := golang.org/x/vuln/cmd/govulncheck@v1.1.4

.PHONY: build test race lint static bench bench-ci bench-alloc bench-kernels bench-baseline scale-smoke scale-baseline trace-lint fault-lint profile-smoke fuzz matrix matrix-smoke daemon-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

# Deeper static analysis, same pinned tool versions as the CI static job.
# Both tools download on first use (go run caches the builds).
static:
	$(GO) run $(STATICCHECK) ./...
	$(GO) run $(GOVULNCHECK) ./...

# Print the benchmark timings without gating.
bench:
	$(GO) test -bench . -benchtime 1x -count 3 -run '^$$' .

# What CI runs: benchmark, attach deterministic obs counters, gate ns/op
# against the committed baseline (>25% regression fails). -require-all makes
# a benchmark that exists in the baseline but vanished from the run a hard
# failure — a silently dropped benchmark would otherwise pass the gate.
# -history appends the run to a JSONL trend file (informational deltas only;
# the hard gate stays with -baseline) which the CI bench job uploads as an
# artifact.
bench-ci:
	$(GO) test -bench . -benchtime 1x -count 3 -benchmem -run '^$$' . | $(GO) run ./cmd/benchci -out BENCH_ci.json -baseline BENCH_baseline.json -require-all -history BENCH_history.jsonl

# Allocation gate over the scheduler hot-path microbenchmarks: the intra
# planner, PRT and combinatorial-kernel benchmarks run with -benchmem and
# fail on allocs/op regressions against the committed baseline, mirroring
# the >25% ns/op gate.
bench-alloc:
	$(GO) test -bench 'SunflowIntra|SunflowInter|EngineEvent|PRT_|Solstice_|BvN_|HopcroftKarp_|MaxMinFair_' -benchtime 1x -count 3 -benchmem -run '^$$' . | $(GO) run ./cmd/benchci -out BENCH_alloc.json -baseline BENCH_baseline.json -gate-allocs -tolerance 10

# The combinatorial kernels alone (matching, BvN/Sinkhorn, Solstice slicing,
# max-min water-filling) with allocation counts — the quick loop while
# working on DESIGN.md §8 machinery.
bench-kernels:
	$(GO) test -bench 'Solstice_|BvN_|HopcroftKarp_|MaxMinFair_' -benchtime 1x -count 3 -benchmem -run '^$$' .

# Refresh the committed baseline after an intentional performance change.
bench-baseline:
	$(GO) test -bench . -benchtime 1x -count 3 -benchmem -run '^$$' . | $(GO) run ./cmd/benchci -write-baseline BENCH_baseline.json

# Million-Coflow scale gate (docs/SCALE.md): stream a 100k-Coflow trace to
# disk with tracegen (constant resident memory), run it twice end-to-end
# through the bounded-memory archive path under a peak-RSS budget, and
# require the two order-independent archive digests to be byte-identical.
# A third run forces -full-replan (no incremental schedule reuse) and must
# produce the same digest again — the reference-oracle check at full scale.
# Then the SUNFLOW_SCALE benchmark runs once and benchci gates wall time,
# allocs/op and peak RSS against the committed scale baseline. Each 100k
# run takes ~5 minutes; override SCALE_COFLOWS for a quicker local loop
# (the benchmark stays at 100k regardless). Same as the CI scale job.
SCALE_COFLOWS ?= 100000
SCALE_RSS_MB ?= 256
scale-smoke:
	$(GO) build -o bin/tracegen ./cmd/tracegen
	$(GO) build -o bin/sunflow-scale ./cmd/sunflow-scale
	bin/tracegen -ports 150 -coflows $(SCALE_COFLOWS) -horizon 684410.65 -seed 1 -o scale-trace.txt
	bin/sunflow-scale -in scale-trace.txt -max-rss-mb $(SCALE_RSS_MB) -digest-out scale-digest-1.txt
	bin/sunflow-scale -in scale-trace.txt -max-rss-mb $(SCALE_RSS_MB) -digest-out scale-digest-2.txt
	cmp scale-digest-1.txt scale-digest-2.txt
	@echo "scale-smoke: archive digest byte-identical across two runs"
	bin/sunflow-scale -in scale-trace.txt -max-rss-mb $(SCALE_RSS_MB) -full-replan -digest-out scale-digest-full.txt
	cmp scale-digest-1.txt scale-digest-full.txt
	@echo "scale-smoke: incremental and full-replan archive digests byte-identical"
	SUNFLOW_SCALE=1 $(GO) test -bench SunflowInter_100k -benchtime 1x -benchmem -run '^$$' . | $(GO) run ./cmd/benchci -out BENCH_scale.json -baseline BENCH_scale_baseline.json -gate-rss -require-all

# Refresh the committed scale baseline after an intentional change to the
# streaming path's speed, allocations or memory footprint.
scale-baseline:
	SUNFLOW_SCALE=1 $(GO) test -bench SunflowInter_100k -benchtime 1x -benchmem -run '^$$' . | $(GO) run ./cmd/benchci -write-baseline BENCH_scale_baseline.json

# Trace a fixed-seed run, check the docs/TRACE.md invariants, render the
# HTML report. Same pipeline as the CI trace job.
trace-lint:
	$(GO) run ./cmd/repro -seed 1 -coflows 40 -ports 24 -maxwidth 8 -trace events.jsonl fig9
	$(GO) run ./cmd/sunflow-analyze lint events.jsonl
	$(GO) run ./cmd/sunflow-analyze report -o report.html events.jsonl

# Fault-injection pipeline (docs/FAULTS.md): run the resilience experiment
# with tracing and verify the degraded-fabric trace satisfies every replay
# invariant, including retry_delta and down_port_overlap. Same as the CI
# faults job.
fault-lint:
	$(GO) run ./cmd/repro -seed 1 -trace fault-events.jsonl resilience
	$(GO) run ./cmd/sunflow-analyze lint fault-events.jsonl

# Self-profiling pipeline (docs/OBSERVABILITY.md): a fixed-seed run with
# spans recorded into the trace, the span lint rules (span_structure,
# span_containment) checked alongside every other invariant, and the
# per-phase table plus flamegraph SVG rendered. Same as the CI
# profile-smoke job; the SVG is the uploaded artifact.
profile-smoke:
	$(GO) run ./cmd/repro -seed 1 -coflows 40 -ports 24 -maxwidth 8 -profile -trace profile-events.jsonl fig9
	$(GO) run ./cmd/sunflow-analyze lint profile-events.jsonl
	$(GO) run ./cmd/sunflow-analyze profile -o profile.svg profile-events.jsonl

# Short fuzz smoke over the two untrusted-input decoders: the benchmark
# trace parser and the JSON fault-plan decoder. Same as the CI fuzz job.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzParseJobs -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fault -run '^$$' -fuzz FuzzDecodePlan -fuzztime $(FUZZTIME)

# Nightly-scale scenario matrix (docs/MATRIX.md): all five schedulers across
# fabric sizes, delta regimes and workload shapes, five replications per
# cell, rolled up into matrix-out/{cells.jsonl,report.html}.
matrix:
	$(GO) run ./cmd/repro -matrix examples/matrix/nightly.json -matrix-out matrix-out

# CI-scale matrix plus the determinism gate: the smoke spec runs twice and
# the machine-readable cell rows must be byte-identical. The shard spec then
# sweeps shard_workers over one scenario and every cell's replication rows
# must match the serial cell's — sharded execution may never change a
# reported number. Same as the CI matrix-smoke job; the first run's
# report.html is the uploaded artifact.
matrix-smoke:
	$(GO) run ./cmd/repro -matrix examples/matrix/smoke.json -matrix-out matrix-smoke-out
	$(GO) run ./cmd/repro -matrix examples/matrix/smoke.json -matrix-out matrix-smoke-rerun
	cmp matrix-smoke-out/cells.jsonl matrix-smoke-rerun/cells.jsonl
	@echo "matrix-smoke: cells.jsonl byte-identical across two runs"
	$(GO) run ./cmd/repro -matrix examples/matrix/shard-smoke.json -matrix-out matrix-shard-out
	@n=$$(sed -n 's/.*"reps":\(\[[^]]*\]\).*/\1/p' matrix-shard-out/cells.jsonl | sort -u | wc -l); \
	if [ "$$n" != "1" ]; then echo "matrix-smoke: shard cells reported $$n distinct rep rows, want 1" >&2; exit 1; fi
	@echo "matrix-smoke: shard_workers sweep rep rows identical to serial"

# End-to-end crash-recovery smoke for the online daemon (docs/DAEMON.md):
# build sunflowd, stream a fixed-seed workload over the /v1 API, kill -9 the
# process mid-run, restart it on the same data directory, and require the
# recovered state digest and every Coflow CCT to be bit-identical to an
# uninterrupted in-process reference; then SIGTERM and require a clean drain
# that checkpoints everything. Same as the CI daemon-smoke job.
daemon-smoke:
	$(GO) build -o bin/sunflowd ./cmd/sunflowd
	$(GO) run ./cmd/sunflowd-smoke -bin bin/sunflowd

clean:
	rm -f BENCH_ci.json BENCH_alloc.json BENCH_history.jsonl events.jsonl fault-events.jsonl report.html
	rm -f profile-events.jsonl profile.svg
	rm -f BENCH_scale.json scale-trace.txt scale-digest-1.txt scale-digest-2.txt scale-digest-full.txt
	rm -rf matrix-out matrix-smoke-out matrix-smoke-rerun matrix-shard-out bin
