// Command sunflowd is the online Sunflow scheduler daemon: it accepts Coflow
// registrations and fabric events over HTTP/JSON, maintains one live port
// reservation table, and replans the circuit schedule incrementally as events
// arrive (docs/DAEMON.md).
//
// Usage:
//
//	sunflowd -data dir [-http addr] [-ports n] [-gbps g] [-delta-ms d]
//	         [-queue n] [-inflight n] [-request-timeout dur]
//	         [-checkpoint-every n] [-checkpoint-interval dur]
//	         [-watchdog dur] [-seed s]
//
// The data directory holds the write-ahead log and snapshots; restarting
// against the same directory recovers the exact pre-crash schedule state
// (bit-identical digest). The fabric parameters (-ports, -gbps, -delta-ms,
// -order, -seed) are fixed for the directory's lifetime — the daemon refuses
// to open a directory recorded under different parameters.
//
// The HTTP server is the obshttp exposition server, so /metrics, /metrics.json,
// /healthz, /readyz, expvar and pprof ride alongside the /v1 API. SIGTERM and
// SIGINT drain gracefully: readiness fails, admitted events finish applying, a
// final checkpoint is written, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sunflow/internal/bench"
	"sunflow/internal/core"
	"sunflow/internal/daemon"
	"sunflow/internal/obs"
	"sunflow/internal/obs/obshttp"
)

func main() {
	dataDir := flag.String("data", "", "data directory for the WAL and snapshots (required)")
	httpAddr := flag.String("http", "127.0.0.1:9090", "serve the /v1 API and observability endpoints on this address")
	ports := flag.Int("ports", 150, "fabric port count N (fixed per data directory)")
	gbps := flag.Float64("gbps", 100, "per-port link bandwidth in Gb/s")
	deltaMs := flag.Float64("delta-ms", 10, "circuit reconfiguration delay δ in milliseconds")
	order := flag.Int("order", int(core.OrderedPort), "intra-Coflow reservation order (0=OrderedPort 1=Random 2=SortedDemand)")
	seed := flag.Int64("seed", 1, "seed for the Random reservation order")
	queue := flag.Int("queue", 0, "intake queue size (0 = default 256)")
	inflight := flag.Int("inflight", 0, "load-shedding in-flight limit (0 = default 2×queue)")
	reqTimeout := flag.Duration("request-timeout", 0, "max queue wait per request (0 = default 5s)")
	ckptEvery := flag.Int("checkpoint-every", 0, "snapshot after this many accepted events (0 = default 1024, negative disables)")
	ckptInterval := flag.Duration("checkpoint-interval", 0, "snapshot on this wall-clock period (0 = default 30s, negative disables)")
	watchdog := flag.Duration("watchdog", 0, "fail readiness when one apply exceeds this (0 = default 30s, negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max graceful-drain wait on SIGTERM/SIGINT")
	flag.Parse()

	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "sunflowd: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	cfg := daemon.Config{
		Engine: daemon.EngineConfig{
			Ports:   *ports,
			LinkBps: *gbps * bench.Gbps,
			Delta:   *deltaMs / 1e3,
			Order:   core.Order(*order),
			Seed:    *seed,
		},
		DataDir:            *dataDir,
		QueueSize:          *queue,
		MaxInflight:        *inflight,
		RequestTimeout:     *reqTimeout,
		CheckpointEvery:    *ckptEvery,
		CheckpointInterval: *ckptInterval,
		WatchdogTimeout:    *watchdog,
		Obs:                obs.NewWith(reg, nil),
		Metrics:            obs.NewDaemonMetrics(reg),
	}

	// Install the handler before anything is reachable from outside: once the
	// HTTP server (or even the recovery banner) is visible, an orchestrator
	// may legitimately SIGTERM us, and an uninstalled handler would mean the
	// default disposition — death without a drain.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	d, err := daemon.Start(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sunflowd: %v\n", err)
		os.Exit(1)
	}
	if n := d.Recovered(); n > 0 {
		fmt.Printf("[sunflowd recovered %d WAL events; digest %s]\n", n, d.Engine().Digest())
	}

	srv, err := obshttp.Serve(*httpAddr, reg, obshttp.Options{
		Ready:  d.Ready,
		Routes: d.Routes(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sunflowd: %v\n", err)
		os.Exit(1)
	}
	// The smoke harness parses this line to learn the bound port; keep the
	// format stable.
	fmt.Printf("[sunflowd listening on %s]\n", srv.Addr())

	sig := <-sigCh
	fmt.Printf("[sunflowd draining on %s]\n", sig)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := d.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "sunflowd: %v\n", err)
		code = 1
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "sunflowd: http: %v\n", err)
		code = 1
	}
	fmt.Println("[sunflowd stopped]")
	os.Exit(code)
}
