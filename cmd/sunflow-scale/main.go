// Command sunflow-scale runs a large Coflow workload end-to-end through the
// bounded-memory simulation path and reports the scale health numbers the
// CI scale-smoke job gates on: the order-independent archive digest (for
// determinism checks across runs), peak resident memory (for the max-RSS
// budget), and coflows-per-second throughput.
//
// The workload streams either from a benchmark-format trace file (-in,
// parsed one record at a time by trace.Scanner) or straight from the seeded
// generator (-coflows/-dist); neither path ever materializes the whole
// trace, so resident memory tracks peak concurrent Coflows.
//
// Usage:
//
//	sunflow-scale -in trace.txt [-link 1e9] [-delta 0.01] [-max-rss-mb 512] [-digest-out digest.txt] [-full-replan]
//	sunflow-scale -coflows 100000 [-ports 150] [-dist facebook] [-seed 1] [-horizon 0]
//
// -full-replan forces the reference scheduling path (no incremental schedule
// reuse); the archive digest must be byte-identical either way, which the
// scale-smoke CI job gates on.
//
// With -max-rss-mb the command exits non-zero when VmHWM exceeds the budget.
// A zero -horizon scales the generator's arrival span so arrival density
// matches the paper's 526-Coflow/hour trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sunflow/internal/procstat"
	"sunflow/internal/sim"
	"sunflow/internal/trace"
)

func main() {
	in := flag.String("in", "", "stream this benchmark-format trace file (empty: use the generator)")
	coflows := flag.Int("coflows", 100_000, "generator: number of Coflows")
	ports := flag.Int("ports", 150, "generator: fabric port count")
	dist := flag.String("dist", trace.DistFacebook, "generator: workload distribution: "+strings.Join(trace.KnownDists, ", "))
	seed := flag.Int64("seed", 1, "generator seed")
	horizon := flag.Float64("horizon", 0, "generator: arrival span in seconds (0: scale the paper's density to -coflows)")
	link := flag.Float64("link", 1e9, "link bandwidth in bits/s")
	delta := flag.Float64("delta", 0.01, "reconfiguration delay in seconds")
	maxRSS := flag.Float64("max-rss-mb", 0, "fail when peak RSS exceeds this many MB (0: no budget)")
	digestOut := flag.String("digest-out", "", "also write the digest line to this file")
	fullReplan := flag.Bool("full-replan", false, "disable incremental schedule reuse: rerun the intra scheduler for every live Coflow on every pass (the reference oracle; the archive digest must not change)")
	flag.Parse()

	var (
		src      sim.Source
		numPorts int
		total    int
	)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sc, err := trace.NewScanner(f, trace.AutoBase)
		if err != nil {
			fatal(err)
		}
		src = sc.Coflows()
		numPorts, total = sc.Ports(), sc.NumJobs()
	} else {
		if !trace.ValidDist(*dist) {
			fatal(fmt.Errorf("unknown distribution %q (want one of %s)", *dist, strings.Join(trace.KnownDists, ", ")))
		}
		h := *horizon
		if h == 0 {
			h = float64(*coflows) / 526 * 3600
		}
		g := trace.Generator{Ports: *ports, Coflows: *coflows, HorizonSec: h, Seed: *seed, Dist: *dist}
		st := g.Stream()
		src = st.Coflows()
		numPorts, total = st.Ports(), st.Len()
	}

	var dig sim.ArchiveDigest
	start := time.Now()
	res, err := sim.RunCircuitSource(src, sim.CircuitOptions{
		Ports:      numPorts,
		LinkBps:    *link,
		Delta:      *delta,
		OnArchive:  dig.Add,
		FullReplan: *fullReplan,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	rss := procstat.PeakRSSMB()
	digest := fmt.Sprintf("digest %s coflows %d events %d", dig.Sum(), dig.Count(), res.Events)
	fmt.Println(digest)
	fmt.Printf("ports %d coflows %d/%d elapsed %.1fs throughput %.0f coflows/s rss %.1f MB\n",
		numPorts, dig.Count(), total, elapsed.Seconds(), float64(dig.Count())/elapsed.Seconds(), rss)
	if res.Partial.Degraded() {
		fatal(fmt.Errorf("workload stranded %d flows on a fault-free fabric", len(res.Partial.Stranded)))
	}
	if dig.Count() != total {
		fatal(fmt.Errorf("archived %d of %d coflows", dig.Count(), total))
	}
	if *digestOut != "" {
		if err := os.WriteFile(*digestOut, []byte(digest+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	if *maxRSS > 0 && rss > *maxRSS {
		fatal(fmt.Errorf("peak RSS %.1f MB exceeds the %.0f MB budget", rss, *maxRSS))
	}
	if rss == 0 {
		fmt.Println("sunflow-scale: note: no procfs; RSS budget not enforced")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sunflow-scale:", err)
	os.Exit(1)
}
