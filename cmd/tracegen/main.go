// Command tracegen emits a synthetic Coflow workload in the
// coflow-benchmark text format, calibrated to the statistics of the
// Facebook trace the Sunflow paper evaluates on.
//
// Usage:
//
//	tracegen [-ports 150] [-coflows 526] [-horizon 3600] [-maxwidth 40] [-seed 1] [-o trace.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sunflow/internal/trace"
)

func main() {
	ports := flag.Int("ports", 150, "fabric port count")
	coflows := flag.Int("coflows", 526, "number of Coflows")
	horizon := flag.Float64("horizon", 3600, "arrival span in seconds")
	maxWidth := flag.Int("maxwidth", 60, "max shuffle fan-in/out")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	g := trace.Generator{
		Ports:      *ports,
		Coflows:    *coflows,
		HorizonSec: *horizon,
		MaxWidth:   *maxWidth,
		Seed:       *seed,
	}
	nPorts, jobs := g.Jobs()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteJobs(w, nPorts, jobs); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
