// Command tracegen emits a synthetic Coflow workload in the
// coflow-benchmark text format, calibrated to the statistics of the
// Facebook trace the Sunflow paper evaluates on, or to the alternative
// google/incast profiles. Jobs are generated and written one record at a
// time, so emitting a million-Coflow trace needs constant resident memory.
//
// Usage:
//
//	tracegen [-ports 150] [-coflows 526] [-horizon 3600] [-maxwidth 40]
//	         [-dist facebook|google|incast] [-seed 1] [-o trace.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sunflow/internal/trace"
)

func main() {
	ports := flag.Int("ports", 150, "fabric port count")
	coflows := flag.Int("coflows", 526, "number of Coflows")
	horizon := flag.Float64("horizon", 3600, "arrival span in seconds")
	maxWidth := flag.Int("maxwidth", 60, "max shuffle fan-in/out")
	dist := flag.String("dist", trace.DistFacebook,
		"workload distribution: "+strings.Join(trace.KnownDists, ", "))
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	if !trace.ValidDist(*dist) {
		fatal(fmt.Errorf("unknown distribution %q (want one of %s)", *dist, strings.Join(trace.KnownDists, ", ")))
	}
	g := trace.Generator{
		Ports:      *ports,
		Coflows:    *coflows,
		HorizonSec: *horizon,
		MaxWidth:   *maxWidth,
		Seed:       *seed,
		Dist:       *dist,
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	st := g.Stream()
	jw, err := trace.NewJobWriter(w, st.Ports(), st.Len())
	if err != nil {
		fatal(err)
	}
	for {
		j, ok := st.Next()
		if !ok {
			break
		}
		if err := jw.Write(j); err != nil {
			fatal(err)
		}
	}
	if err := jw.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
