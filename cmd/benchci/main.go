// Command benchci turns `go test -bench` output into a CI artifact and gates
// benchmark regressions.
//
// It reads benchmark lines on stdin, attaches the deterministic observability
// counters of a fixed-seed small-configuration run (bench.CollectCIMetrics),
// and writes the combined report as JSON. When a baseline file exists, each
// benchmark's ns/op is compared against it and the command exits non-zero if
// any benchmark regressed by more than the tolerance. With -gate-allocs,
// allocs/op (from b.ReportAllocs or -benchmem) is gated the same way against
// its own tolerance — the zero-allocation scheduler hot path is a measured
// property, so CI pins it. With -gate-rss, benchmarks reporting the MB-rss
// scale metric (BenchmarkSunflowInter_100k) gate peak resident memory
// against the baseline the same way, and their coflows/s throughput is
// printed as an informational column.
//
// Usage:
//
//	go test -bench . -benchtime 1x -benchmem -run '^$' . | benchci -out BENCH_ci.json -baseline BENCH_baseline.json
//	go test -bench . -benchtime 1x -benchmem -run '^$' . | benchci -write-baseline BENCH_baseline.json
//	go test -bench . -benchtime 1x -benchmem -run '^$' . | benchci -baseline BENCH_baseline.json -gate-allocs
//	go test -bench . -benchtime 1x -run '^$' . | benchci -list
//	go test -bench . -benchtime 1x -benchmem -run '^$' . | benchci -history BENCH_history.jsonl
//
// -history appends each run's parsed benchmarks as one timestamped JSONL
// line and prints per-benchmark deltas against the previous entry, giving
// the repo a queryable performance trail alongside the pass/fail gate.
//
// With -require-all, a benchmark present in the baseline but absent from
// the run fails the gate with an explicit per-name diff — a silently
// dropped benchmark (renamed, deleted, or filtered out by a typo'd -bench
// pattern) would otherwise pass. Leave it off for intentionally filtered
// runs like the allocation gate, which benchmark a subset of the baseline.
//
// At startup benchci prints how each raw benchmark name was normalized
// (the -GOMAXPROCS suffix stripped) so baseline mismatches across machines
// are diagnosable from the CI log. -list stops after that: it prints the
// parsed benchmarks and exits without collecting metrics or gating.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sunflow/internal/bench"
)

// Report is the benchci artifact: benchmark timings plus the observability
// fingerprint of the fixed CI configuration.
type Report struct {
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Allocs maps benchmark name to allocs/op, for benchmarks that report
	// allocations (b.ReportAllocs or -benchmem).
	Allocs map[string]float64 `json:"allocs,omitempty"`
	// RSS maps benchmark name to peak resident memory in MB, for benchmarks
	// that report the MB-rss scale metric. Gated by -gate-rss.
	RSS map[string]float64 `json:"rss_mb,omitempty"`
	// Throughput maps benchmark name to coflows/s, for benchmarks that
	// report the scale throughput metric. Informational: the hard time gate
	// stays with ns/op.
	Throughput map[string]float64 `json:"coflows_per_sec,omitempty"`
	// Metrics carries the per-scheduler counters of the CI configuration.
	Metrics bench.CIMetrics `json:"metrics"`
}

func main() {
	out := flag.String("out", "BENCH_ci.json", "write the benchmark report to this file")
	baseline := flag.String("baseline", "", "compare ns/op against this baseline report; missing file skips the gate")
	writeBaseline := flag.String("write-baseline", "", "write the report to this file as the new baseline and skip the gate")
	tolerance := flag.Float64("tolerance", 0.25, "fail when ns/op exceeds baseline by more than this fraction")
	gateAllocs := flag.Bool("gate-allocs", false, "also fail when allocs/op exceeds baseline by more than -alloc-tolerance")
	allocTolerance := flag.Float64("alloc-tolerance", 0.10, "allocs/op regression tolerance for -gate-allocs")
	gateRSS := flag.Bool("gate-rss", false, "also fail when a benchmark's MB-rss exceeds baseline by more than -rss-tolerance")
	rssTolerance := flag.Float64("rss-tolerance", 0.25, "MB-rss regression tolerance for -gate-rss")
	requireAll := flag.Bool("require-all", false, "fail when a benchmark in the baseline is missing from this run")
	list := flag.Bool("list", false, "print the parsed benchmarks and exit without writing a report or gating")
	history := flag.String("history", "", "append this run's benchmarks to the given JSONL history file and print per-benchmark deltas against the previous entry")
	flag.Parse()

	p, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(p.benches) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench . -benchtime 1x -run '^$'` into benchci)"))
	}
	// Name normalization is the part of the pipeline that silently breaks
	// when machines disagree, so say what happened up front, once.
	for _, raw := range sortedKeysOf(p.mapping) {
		if norm := p.mapping[raw]; norm != raw {
			fmt.Printf("benchci: name %s -> %s\n", raw, norm)
		} else {
			fmt.Printf("benchci: name %s (unchanged)\n", raw)
		}
	}
	if *list {
		for _, name := range sortedKeys(p.benches) {
			fmt.Printf("benchci: %-40s %12.0f ns/op\n", name, p.benches[name])
		}
		return
	}

	metrics, err := bench.CollectCIMetrics()
	if err != nil {
		fatal(err)
	}
	report := Report{
		Benchmarks: p.benches,
		Allocs:     p.allocs,
		RSS:        p.rss,
		Throughput: p.throughput,
		Metrics:    metrics,
	}

	path := *out
	if *writeBaseline != "" {
		path = *writeBaseline
	}
	if err := writeReport(path, report); err != nil {
		fatal(err)
	}
	fmt.Printf("benchci: wrote %s (%d benchmarks)\n", path, len(p.benches))
	if *history != "" {
		if err := appendHistory(os.Stdout, *history, report); err != nil {
			fatal(err)
		}
	}
	if *writeBaseline != "" || *baseline == "" {
		return
	}

	base, err := readReport(*baseline)
	if os.IsNotExist(err) {
		fmt.Printf("benchci: no baseline at %s; skipping the regression gate\n", *baseline)
		return
	}
	if err != nil {
		fatal(err)
	}
	failed := gate(report, base, *tolerance)
	failed = gateMissing(report, base, *requireAll) || failed
	if *gateAllocs {
		failed = gateAllocRegressions(report, base, *allocTolerance) || failed
	}
	printThroughput(report, base)
	if *gateRSS {
		failed = gateRSSRegressions(report, base, *rssTolerance) || failed
	}
	if failed {
		os.Exit(1)
	}
}

// parsed carries everything parseBench extracts from the benchmark stream.
type parsed struct {
	benches    map[string]float64
	allocs     map[string]float64
	rss        map[string]float64
	throughput map[string]float64
	mapping    map[string]string
}

// parseBench extracts "BenchmarkName-N  iters  12345 ns/op [... allocs/op]"
// lines. A benchmark appearing several times (go test -count N) keeps its
// fastest run: the minimum is the least noisy estimate of true cost, which is
// what both the baseline and the gated measurement should record. Minimum is
// right for allocs/op and MB-rss too — allocations are deterministic up to
// pool warmup, and the smallest high-water mark is the least noisy memory
// estimate. Throughput (coflows/s) keeps the maximum, its least noisy side.
// The mapping records how each raw name was normalized.
func parseBench(r io.Reader) (parsed, error) {
	p := parsed{
		benches:    map[string]float64{},
		allocs:     map[string]float64{},
		rss:        map[string]float64{},
		throughput: map[string]float64{},
		mapping:    map[string]string{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		ns, ok := unitValue(f, "ns/op")
		if !ok {
			continue
		}
		name := stripProcs(f[0])
		p.mapping[f[0]] = name
		if prev, seen := p.benches[name]; !seen || ns < prev {
			p.benches[name] = ns
		}
		if ac, ok := unitValue(f, "allocs/op"); ok {
			if prev, seen := p.allocs[name]; !seen || ac < prev {
				p.allocs[name] = ac
			}
		}
		if mb, ok := unitValue(f, "MB-rss"); ok {
			if prev, seen := p.rss[name]; !seen || mb < prev {
				p.rss[name] = mb
			}
		}
		if cps, ok := unitValue(f, "coflows/s"); ok {
			if prev, seen := p.throughput[name]; !seen || cps > prev {
				p.throughput[name] = cps
			}
		}
	}
	return p, sc.Err()
}

// unitValue returns the number preceding the given unit token in a benchmark
// line's fields.
func unitValue(f []string, unit string) (float64, bool) {
	for i := 1; i < len(f); i++ {
		if f[i] == unit {
			v, err := strconv.ParseFloat(f[i-1], 64)
			return v, err == nil
		}
	}
	return 0, false
}

// stripProcs removes the trailing -GOMAXPROCS suffix Go appends to benchmark
// names, so baselines compare across machines with different core counts.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// gate compares current timings against the baseline, printing every
// comparison; it returns true when any benchmark regressed beyond tol.
func gate(cur, base Report, tol float64) bool {
	failed := false
	for _, name := range sortedKeys(cur.Benchmarks) {
		ns := cur.Benchmarks[name]
		old, ok := base.Benchmarks[name]
		if !ok || old <= 0 {
			fmt.Printf("benchci: %-40s %12.0f ns/op (no baseline)\n", name, ns)
			continue
		}
		ratio := ns / old
		status := "ok"
		if ratio > 1+tol {
			status = fmt.Sprintf("REGRESSION (>%.0f%%)", tol*100)
			failed = true
		}
		fmt.Printf("benchci: %-40s %12.0f ns/op  baseline %12.0f  ratio %.2f  %s\n", name, ns, old, ratio, status)
	}
	// Counter drift is informational: counts legitimately change when the
	// algorithms do, but silent drift has historically hidden accounting
	// bugs, so surface it.
	for _, scope := range sortedScopeNames(cur.Metrics) {
		c, b := cur.Metrics.Scopes[scope], base.Metrics.Scopes[scope]
		if c.CircuitSetups != b.CircuitSetups || c.Reservations != b.Reservations ||
			c.CoflowsCompleted != b.CoflowsCompleted {
			fmt.Printf("benchci: note: scope %q counters drifted from baseline: setups %d->%d reservations %d->%d completed %d->%d\n",
				scope, b.CircuitSetups, c.CircuitSetups, b.Reservations, c.Reservations,
				b.CoflowsCompleted, c.CoflowsCompleted)
		}
	}
	if failed {
		fmt.Println("benchci: FAIL — benchmark regression above tolerance")
	}
	return failed
}

// gateMissing diffs the baseline's benchmark names against the run's and
// prints every baseline benchmark the run no longer produced. The diff is
// always printed; it fails the gate only under -require-all, because
// filtered runs (bench-alloc's subset) legitimately omit baselines.
func gateMissing(cur, base Report, requireAll bool) bool {
	var missing []string
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return false
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("benchci: MISSING %-40s baseline %12.0f ns/op, absent from this run\n",
			name, base.Benchmarks[name])
	}
	if !requireAll {
		fmt.Printf("benchci: note: %d baseline benchmark(s) missing from this run (pass -require-all to fail on this)\n", len(missing))
		return false
	}
	fmt.Printf("benchci: FAIL — %d baseline benchmark(s) missing from this run; rename or prune them from the baseline deliberately (-write-baseline), don't drop them silently\n", len(missing))
	return true
}

// gateAllocRegressions mirrors the ns/op gate for allocs/op: any benchmark
// whose allocation count grew beyond tol over the baseline fails the build.
// Benchmarks without alloc data on either side are skipped.
func gateAllocRegressions(cur, base Report, tol float64) bool {
	failed := false
	for _, name := range sortedKeys(cur.Allocs) {
		ac := cur.Allocs[name]
		old, ok := base.Allocs[name]
		if !ok || old <= 0 {
			fmt.Printf("benchci: %-40s %12.0f allocs/op (no baseline)\n", name, ac)
			continue
		}
		ratio := ac / old
		status := "ok"
		if ratio > 1+tol {
			status = fmt.Sprintf("ALLOC REGRESSION (>%.0f%%)", tol*100)
			failed = true
		}
		fmt.Printf("benchci: %-40s %12.0f allocs/op  baseline %12.0f  ratio %.2f  %s\n", name, ac, old, ratio, status)
	}
	if failed {
		fmt.Println("benchci: FAIL — allocation regression above tolerance")
	}
	return failed
}

// gateRSSRegressions mirrors the ns/op gate for peak resident memory: any
// benchmark whose MB-rss grew beyond tol over the baseline fails the build —
// the scale path's memory bound is a measured property, so CI pins it.
// Benchmarks without RSS data on either side are skipped; a zero reading
// (no procfs) is skipped with a note rather than gated against.
func gateRSSRegressions(cur, base Report, tol float64) bool {
	failed := false
	for _, name := range sortedKeys(cur.RSS) {
		mb := cur.RSS[name]
		if mb == 0 {
			fmt.Printf("benchci: %-40s MB-rss unavailable (no procfs); skipping the RSS gate\n", name)
			continue
		}
		old, ok := base.RSS[name]
		if !ok || old <= 0 {
			fmt.Printf("benchci: %-40s %12.1f MB-rss (no baseline)\n", name, mb)
			continue
		}
		ratio := mb / old
		status := "ok"
		if ratio > 1+tol {
			status = fmt.Sprintf("RSS REGRESSION (>%.0f%%)", tol*100)
			failed = true
		}
		fmt.Printf("benchci: %-40s %12.1f MB-rss    baseline %12.1f  ratio %.2f  %s\n", name, mb, old, ratio, status)
	}
	if failed {
		fmt.Println("benchci: FAIL — peak-RSS regression above tolerance")
	}
	return failed
}

// printThroughput prints the coflows/s column against the baseline.
// Informational only: wall time is already gated via ns/op, and throughput
// is its reciprocal at fixed workload size.
func printThroughput(cur, base Report) {
	for _, name := range sortedKeys(cur.Throughput) {
		cps := cur.Throughput[name]
		if old, ok := base.Throughput[name]; ok && old > 0 {
			fmt.Printf("benchci: %-40s %12.0f coflows/s  baseline %12.0f  %+.1f%%\n",
				name, cps, old, (cps/old-1)*100)
		} else {
			fmt.Printf("benchci: %-40s %12.0f coflows/s (no baseline)\n", name, cps)
		}
	}
}

// historyEntry is one line of the -history JSONL file: a timestamped
// snapshot of this run's benchmark numbers. Keeping every run (instead of
// one rolling baseline) gives the repo a queryable performance trail —
// `jq` over the file plots any benchmark across commits.
type historyEntry struct {
	Time       string             `json:"time"`
	Benchmarks map[string]float64 `json:"benchmarks"`
	Allocs     map[string]float64 `json:"allocs,omitempty"`
	RSS        map[string]float64 `json:"rss_mb,omitempty"`
	Throughput map[string]float64 `json:"coflows_per_sec,omitempty"`
}

// appendHistory prints each benchmark's delta against the file's last entry,
// then appends the current run as a new JSONL line. Deltas are informational
// only — the hard gate stays with -baseline.
func appendHistory(w io.Writer, path string, r Report) error {
	prev, n, err := lastHistoryEntry(path)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	if prev == nil {
		fmt.Fprintf(w, "benchci: history: starting %s\n", path)
	} else {
		for _, name := range sortedKeys(r.Benchmarks) {
			ns := r.Benchmarks[name]
			old, ok := prev.Benchmarks[name]
			if !ok || old <= 0 {
				fmt.Fprintf(w, "benchci: history: %-40s %12.0f ns/op (new)\n", name, ns)
				continue
			}
			fmt.Fprintf(w, "benchci: history: %-40s %12.0f ns/op  prev %12.0f  %+.1f%%\n",
				name, ns, old, (ns/old-1)*100)
		}
	}
	entry := historyEntry{
		Time:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: r.Benchmarks,
		Allocs:     r.Allocs,
		RSS:        r.RSS,
		Throughput: r.Throughput,
	}
	data, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "benchci: history: appended entry %d to %s\n", n+1, path)
	return nil
}

// lastHistoryEntry returns the file's final parseable entry and the total
// line count; a missing file is an empty history, not an error. A trailing
// corrupt line (interrupted write) is skipped with a note rather than
// poisoning every future run.
func lastHistoryEntry(path string) (*historyEntry, int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var last *historyEntry
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		n++
		var e historyEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			fmt.Printf("benchci: history: skipping unparseable line %d of %s: %v\n", n, path, err)
			continue
		}
		last = &e
	}
	return last, n, sc.Err()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysOf(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedScopeNames(m bench.CIMetrics) []string {
	keys := make([]string, 0, len(m.Scopes))
	for k := range m.Scopes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeReport(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(data, &r)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchci:", err)
	os.Exit(1)
}
