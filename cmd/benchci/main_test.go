package main

import (
	"strings"
	"testing"
)

func TestParseBenchNormalizesAndKeepsFastest(t *testing.T) {
	in := `goos: linux
BenchmarkFig8_InterAvgCCT-8   	       1	 123456789 ns/op
BenchmarkFig8_InterAvgCCT-8   	       1	 100000000 ns/op
BenchmarkIntraSchedule/n=4    	    5000	      2500 ns/op	 320 B/op	      12 allocs/op
BenchmarkIntraSchedule/n=4    	    5000	      2600 ns/op	 320 B/op	       9 allocs/op
PASS
`
	p, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	benches, allocs, mapping := p.benches, p.allocs, p.mapping
	if got := benches["BenchmarkFig8_InterAvgCCT"]; got != 100000000 {
		t.Errorf("fastest run not kept: %v", got)
	}
	if got := benches["BenchmarkIntraSchedule/n=4"]; got != 2500 {
		t.Errorf("sub-benchmark = %v, want 2500", got)
	}
	if got := allocs["BenchmarkIntraSchedule/n=4"]; got != 9 {
		t.Errorf("minimum allocs/op not kept: %v", got)
	}
	if _, ok := allocs["BenchmarkFig8_InterAvgCCT"]; ok {
		t.Error("benchmark without alloc data must not get an alloc entry")
	}
	if mapping["BenchmarkFig8_InterAvgCCT-8"] != "BenchmarkFig8_InterAvgCCT" {
		t.Errorf("mapping = %v", mapping)
	}
	if mapping["BenchmarkIntraSchedule/n=4"] != "BenchmarkIntraSchedule/n=4" {
		t.Errorf("suffix-free name must map to itself: %v", mapping)
	}
}

func TestParseBenchScaleMetrics(t *testing.T) {
	in := `goos: linux
BenchmarkSunflowInter_100k-8   	       1	 274385888130 ns/op	        21.90 MB-rss	       364.5 coflows/s	56696035552 B/op	13354968 allocs/op
BenchmarkSunflowInter_100k-8   	       1	 280000000000 ns/op	        25.00 MB-rss	       350.0 coflows/s	56696035552 B/op	13354968 allocs/op
PASS
`
	p, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.rss["BenchmarkSunflowInter_100k"]; got != 21.90 {
		t.Errorf("minimum MB-rss not kept: %v", got)
	}
	if got := p.throughput["BenchmarkSunflowInter_100k"]; got != 364.5 {
		t.Errorf("maximum coflows/s not kept: %v", got)
	}
}

func TestGateRSSRegressions(t *testing.T) {
	base := Report{RSS: map[string]float64{"BenchmarkScale": 20}}
	ok := Report{RSS: map[string]float64{"BenchmarkScale": 24, "BenchmarkNew": 50}}
	if gateRSSRegressions(ok, base, 0.25) {
		t.Error("within-tolerance growth and baseline-free benchmarks must pass")
	}
	bad := Report{RSS: map[string]float64{"BenchmarkScale": 30}}
	if !gateRSSRegressions(bad, base, 0.25) {
		t.Error("50% RSS growth must fail the 25% gate")
	}
	noProc := Report{RSS: map[string]float64{"BenchmarkScale": 0}}
	if gateRSSRegressions(noProc, base, 0.25) {
		t.Error("a zero reading (no procfs) must skip the gate, not fail it")
	}
}

func TestGateAllocRegressions(t *testing.T) {
	base := Report{Allocs: map[string]float64{"BenchmarkA": 100, "BenchmarkB": 10}}
	ok := Report{Allocs: map[string]float64{"BenchmarkA": 105, "BenchmarkB": 10, "BenchmarkNew": 50}}
	if gateAllocRegressions(ok, base, 0.10) {
		t.Error("within-tolerance growth and baseline-free benchmarks must pass")
	}
	bad := Report{Allocs: map[string]float64{"BenchmarkA": 120}}
	if !gateAllocRegressions(bad, base, 0.10) {
		t.Error("20% allocation growth must fail the 10% gate")
	}
}

func TestGateMissing(t *testing.T) {
	base := Report{Benchmarks: map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200, "BenchmarkC": 300}}
	complete := Report{Benchmarks: map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200, "BenchmarkC": 300, "BenchmarkNew": 1}}
	if gateMissing(complete, base, true) {
		t.Error("run covering every baseline benchmark must pass; new benchmarks are fine")
	}
	dropped := Report{Benchmarks: map[string]float64{"BenchmarkA": 100}}
	if !gateMissing(dropped, base, true) {
		t.Error("baseline benchmarks missing from the run must fail under -require-all")
	}
	if gateMissing(dropped, base, false) {
		t.Error("without -require-all a filtered run must only warn")
	}
	if gateMissing(Report{Benchmarks: map[string]float64{}}, Report{}, true) {
		t.Error("empty baseline has nothing to miss")
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-16":     "BenchmarkX",
		"BenchmarkX":        "BenchmarkX",
		"BenchmarkX-n":      "BenchmarkX-n",
		"BenchmarkA/b=2-4":  "BenchmarkA/b=2",
		"BenchmarkTrailing": "BenchmarkTrailing",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistoryAppendAndDelta(t *testing.T) {
	path := t.TempDir() + "/hist.jsonl"
	r1 := Report{Benchmarks: map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200}}

	var out strings.Builder
	if err := appendHistory(&out, path, r1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "starting") {
		t.Errorf("first append should start a new history, got:\n%s", out.String())
	}

	// Second run: A doubled, B unchanged, C is new.
	r2 := Report{Benchmarks: map[string]float64{"BenchmarkA": 200, "BenchmarkB": 200, "BenchmarkC": 50}}
	out.Reset()
	if err := appendHistory(&out, path, r2); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"BenchmarkA", "+100.0%", "BenchmarkB", "+0.0%", "BenchmarkC", "(new)", "entry 2"} {
		if !strings.Contains(got, want) {
			t.Errorf("history output missing %q:\n%s", want, got)
		}
	}

	last, n, err := lastHistoryEntry(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || last == nil || last.Benchmarks["BenchmarkC"] != 50 {
		t.Fatalf("lastHistoryEntry = %+v (n=%d), want the second entry", last, n)
	}
	if last.Time == "" {
		t.Errorf("history entry has no timestamp")
	}
}

func TestHistoryMissingFileIsEmpty(t *testing.T) {
	last, n, err := lastHistoryEntry(t.TempDir() + "/absent.jsonl")
	if err != nil || last != nil || n != 0 {
		t.Fatalf("missing history = (%v, %d, %v), want (nil, 0, nil)", last, n, err)
	}
}
