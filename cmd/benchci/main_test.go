package main

import (
	"strings"
	"testing"
)

func TestParseBenchNormalizesAndKeepsFastest(t *testing.T) {
	in := `goos: linux
BenchmarkFig8_InterAvgCCT-8   	       1	 123456789 ns/op
BenchmarkFig8_InterAvgCCT-8   	       1	 100000000 ns/op
BenchmarkIntraSchedule/n=4    	    5000	      2500 ns/op	 320 B/op
PASS
`
	benches, mapping, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := benches["BenchmarkFig8_InterAvgCCT"]; got != 100000000 {
		t.Errorf("fastest run not kept: %v", got)
	}
	if got := benches["BenchmarkIntraSchedule/n=4"]; got != 2500 {
		t.Errorf("sub-benchmark = %v, want 2500", got)
	}
	if mapping["BenchmarkFig8_InterAvgCCT-8"] != "BenchmarkFig8_InterAvgCCT" {
		t.Errorf("mapping = %v", mapping)
	}
	if mapping["BenchmarkIntraSchedule/n=4"] != "BenchmarkIntraSchedule/n=4" {
		t.Errorf("suffix-free name must map to itself: %v", mapping)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-16":     "BenchmarkX",
		"BenchmarkX":        "BenchmarkX",
		"BenchmarkX-n":      "BenchmarkX-n",
		"BenchmarkA/b=2-4":  "BenchmarkA/b=2",
		"BenchmarkTrailing": "BenchmarkTrailing",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
