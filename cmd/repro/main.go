// Command repro regenerates the tables and figures of the Sunflow paper's
// evaluation section and prints them in paper-style rows.
//
// Usage:
//
//	repro [-seed 1] [-coflows 526] [-ports 150] [-maxwidth 40]
//	      [-metrics] [-trace file] [-http addr] [-pprof addr] [experiments...]
//	repro -matrix spec.json [-matrix-out dir] [-workers n]
//
// With no arguments it runs everything. Experiment ids: table3, table4,
// fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10, baselines, ordering,
// allstop, starvation, combining, approximation, hybrid, resilience.
//
// -matrix switches to the experiment-matrix engine (docs/MATRIX.md): the
// JSON scenario spec is expanded into cells, every cell runs -workers-wide
// with replicated seeds, and the run is written to -matrix-out as
// machine-readable cells.jsonl (deterministic, byte-identical across runs of
// the same spec) plus a self-contained report.html with per-cell confidence
// intervals and pairwise scheduler speedups.
//
// -metrics prints each experiment's per-scheduler observability summary
// (circuit setups, δ time paid, duty cycle, scheduler-pass wall time).
// -trace writes the structured simulation event stream (circuit up/down,
// flow and Coflow lifecycle) as JSON Lines to the given file; feed it to
// sunflow-analyze for timelines, linting and reports. -http serves live
// Prometheus /metrics, /healthz, expvar and net/http/pprof for the whole
// run (all experiments accumulate into one registry). -pprof serves bare
// net/http/pprof on the given address for live profiling of long runs.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sunflow/internal/bench"
	"sunflow/internal/core"
	"sunflow/internal/matrix"
	"sunflow/internal/obs"
	"sunflow/internal/obs/obshttp"
	"sunflow/internal/obs/render"
	"sunflow/internal/obs/span"
)

func main() {
	seed := flag.Int64("seed", 1, "workload seed")
	coflows := flag.Int("coflows", 526, "number of Coflows")
	ports := flag.Int("ports", 150, "fabric port count")
	maxWidth := flag.Int("maxwidth", 60, "max shuffle fan-in/out")
	metrics := flag.Bool("metrics", false, "print per-scheduler observability summaries after each experiment")
	profile := flag.Bool("profile", false, "record self-profiling spans (wall-clock phase attribution; docs/OBSERVABILITY.md) into the metrics registry and, with -trace, the event stream; analyze with sunflow-analyze profile")
	traceOut := flag.String("trace", "", "write the JSONL simulation event trace to this file")
	httpAddr := flag.String("http", "", "serve live /metrics, /healthz, expvar and pprof on this address (e.g. :8080)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	matrixSpec := flag.String("matrix", "", "run the experiment-matrix spec at this path instead of the paper experiments")
	matrixOut := flag.String("matrix-out", "matrix-out", "directory for the matrix cells.jsonl and report.html")
	workers := flag.Int("workers", 0, "matrix run parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	if *pprofAddr != "" {
		// Bind synchronously so an unusable address fails the run up front
		// instead of printing a "listening" banner and erroring later from a
		// goroutine.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: pprof: %v\n", err)
			os.Exit(1)
		}
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "repro: pprof: %v\n", err)
			}
		}()
		fmt.Printf("[pprof listening on %s]\n", ln.Addr())
	}

	var sink *obs.JSONLSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
		sink = obs.NewJSONLSink(f)
		defer sink.Close()
	}

	// With -http all experiments share one Registry so a scraper watching
	// /metrics sees the whole run accumulate; without it each experiment gets
	// a fresh Registry and the printed summaries stay per-experiment.
	var liveReg *obs.Registry
	if *httpAddr != "" {
		liveReg = obs.NewRegistry()
		srv, err := obshttp.Serve(*httpAddr, liveReg, obshttp.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("[metrics listening on http://%s/metrics]\n", srv.Addr())
	}

	if *matrixSpec != "" {
		var mopts matrix.Options
		// SIGINT/SIGTERM cancel the run instead of killing it: in-flight
		// replications finish, complete cells are aggregated, and the partial
		// cells.jsonl (with a truncation marker) and report.html still flush.
		// A second signal falls back to the default disposition and kills.
		cancelCh := make(chan struct{})
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		go func() {
			sig := <-sigCh
			fmt.Fprintf(os.Stderr, "repro: %v — cancelling matrix run, flushing partial results\n", sig)
			close(cancelCh)
			signal.Stop(sigCh)
		}()
		mopts.Cancel = cancelCh
		if *metrics || sink != nil || liveReg != nil || *profile {
			var s obs.Sink
			if sink != nil {
				s = sink
			}
			reg := liveReg
			if reg == nil {
				reg = obs.NewRegistry()
			}
			mopts.Obs = obs.NewWith(reg, s)
			if *profile {
				mopts.Prof = span.New(span.Options{Registry: reg, Sink: s, Runtime: &span.Sampler{}})
			}
		}
		truncated, err := runMatrix(*matrixSpec, *matrixOut, *workers, mopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
		if sink != nil {
			if err := sink.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "repro: trace: %v\n", err)
				os.Exit(1)
			}
		}
		if truncated {
			// Partial results were flushed, but the run did not complete;
			// exit with the conventional SIGINT status so CI treats it as
			// interrupted rather than successful.
			os.Exit(130)
		}
		return
	}

	cfg := bench.Config{
		Seed:     *seed,
		Coflows:  *coflows,
		Ports:    *ports,
		MaxWidth: *maxWidth,
	}

	wanted := flag.Args()
	if len(wanted) == 0 {
		wanted = []string{
			"table4", "fig3", "fig4", "fig5", "fig6", "fig7",
			"fig8", "fig9", "fig10",
			"table3", "baselines", "ordering", "allstop", "starvation", "combining",
			"approximation", "hybrid", "resilience",
		}
	}

	for _, id := range wanted {
		if *metrics || sink != nil || liveReg != nil || *profile {
			// A fresh observer per experiment keeps the printed summaries
			// attributable; the trace sink is shared so one file carries the
			// whole run. The nil *JSONLSink must not be wrapped in the Sink
			// interface (a typed nil would read as trace-enabled).
			var s obs.Sink
			if sink != nil {
				s = sink
			}
			reg := liveReg
			if reg == nil {
				reg = obs.NewRegistry()
			}
			cfg.Obs = obs.NewWith(reg, s)
			if *profile {
				cfg.Prof = span.New(span.Options{Registry: reg, Sink: s, Runtime: &span.Sampler{}})
			}
		}
		start := time.Now()
		out, err := run(cfg, strings.ToLower(id))
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
		if *metrics {
			fmt.Print(obs.FormatSummaries(cfg.Obs))
		}
		fmt.Printf("[%s took %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if sink != nil {
		if err := sink.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "repro: trace: %v\n", err)
			os.Exit(1)
		}
	}
}

// runMatrix executes a scenario spec and writes the JSONL and HTML reports.
// It reports whether the run was truncated by a cancellation signal.
func runMatrix(specPath, outDir string, workers int, mopts matrix.Options) (bool, error) {
	spec, err := matrix.LoadSpec(specPath)
	if err != nil {
		return false, err
	}
	fmt.Printf("[matrix %q: %d cells × %d replications = %d runs]\n",
		spec.Name, len(spec.Expand()), spec.Replications, spec.Runs())
	start := time.Now()
	mopts.Workers = workers
	mopts.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	res, err := matrix.Run(spec, mopts)
	if err != nil {
		return false, err
	}
	fmt.Print(matrix.Format(res))
	fmt.Printf("[matrix took %s]\n", time.Since(start).Round(time.Millisecond))

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return res.Truncated, err
	}
	jsonlPath := filepath.Join(outDir, "cells.jsonl")
	jf, err := os.Create(jsonlPath)
	if err != nil {
		return res.Truncated, err
	}
	if err := matrix.WriteJSONL(jf, res); err != nil {
		jf.Close()
		return res.Truncated, err
	}
	if err := jf.Close(); err != nil {
		return res.Truncated, err
	}
	htmlPath := filepath.Join(outDir, "report.html")
	hf, err := os.Create(htmlPath)
	if err != nil {
		return res.Truncated, err
	}
	if err := render.MatrixReport(hf, res, ""); err != nil {
		hf.Close()
		return res.Truncated, err
	}
	if err := hf.Close(); err != nil {
		return res.Truncated, err
	}
	fmt.Printf("[wrote %s and %s]\n", jsonlPath, htmlPath)
	return res.Truncated, nil
}

func run(cfg bench.Config, id string) (string, error) {
	switch id {
	case "table3":
		rows, err := bench.Table3(cfg, nil)
		if err != nil {
			return "", err
		}
		return bench.FormatTable3(rows), nil
	case "table4":
		return bench.FormatTable4(bench.Table4(cfg)), nil
	case "fig3":
		rows, err := bench.Fig3(cfg)
		if err != nil {
			return "", err
		}
		return bench.FormatFig3(rows), nil
	case "fig4":
		r, err := bench.Fig4(cfg)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "fig5":
		r, err := bench.Fig5(cfg)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "fig6":
		rows, err := bench.Fig6(cfg)
		if err != nil {
			return "", err
		}
		return bench.FormatDeltaSweep("Figure 6 — intra-Coflow δ sensitivity", rows), nil
	case "fig7":
		r, err := bench.Fig7(cfg)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "fig8":
		rows, err := bench.Fig8(cfg, nil, nil)
		if err != nil {
			return "", err
		}
		return bench.FormatFig8(rows), nil
	case "fig9":
		r, err := bench.Fig9(cfg, 0.12)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "fig10":
		rows, err := bench.Fig10(cfg)
		if err != nil {
			return "", err
		}
		return bench.FormatDeltaSweep("Figure 10 — inter-Coflow δ sensitivity", rows), nil
	case "baselines":
		r, err := bench.Baselines(cfg, 0, 0)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "ordering":
		rows, err := bench.OrderingSensitivity(cfg)
		if err != nil {
			return "", err
		}
		return bench.FormatOrdering(rows), nil
	case "allstop":
		r, err := bench.AllStopAblation(cfg)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "starvation":
		r, err := bench.Starvation(cfg, core.FairWindows{})
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "combining":
		r, err := bench.Combining(cfg, 0)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	case "approximation":
		rows, err := bench.Approximation(cfg)
		if err != nil {
			return "", err
		}
		return bench.FormatApproximation(rows), nil
	case "hybrid":
		rows, err := bench.Hybrid(cfg, 0.1, 0.4)
		if err != nil {
			return "", err
		}
		return bench.FormatHybrid(rows), nil
	case "resilience":
		rows, err := bench.Resilience(cfg, nil)
		if err != nil {
			return "", err
		}
		return bench.FormatResilience(rows), nil
	default:
		return "", fmt.Errorf("unknown experiment (want table3 table4 fig3..fig10 baselines ordering allstop starvation combining approximation hybrid resilience)")
	}
}
