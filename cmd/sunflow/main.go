// Command sunflow schedules Coflow workloads on an optical circuit switch.
//
// It reads a workload in the coflow-benchmark format (file or stdin) and
// either prints the circuit schedule of a single Coflow (-coflow) as a
// Gantt-style reservation listing, or replays the whole trace through the
// online inter-Coflow simulator and reports per-Coflow completion times.
//
// Usage:
//
//	sunflow [-trace file] [-coflow id] [-b gbps] [-delta sec] [-policy scf|fifo] [-scheduler sunflow|solstice] [-v]
//	        [-metrics] [-traceout file] [-http addr] [-pprof addr]
//
// -metrics prints the run's observability summary (circuit setups, δ time
// paid, duty cycle, scheduler-pass wall time) and -traceout writes the
// structured simulation event stream as JSON Lines (inspect it with
// sunflow-analyze); -http serves live Prometheus /metrics, /healthz, expvar
// and net/http/pprof; -pprof serves bare net/http/pprof on the given
// address.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"

	"sunflow/internal/coflow"
	"sunflow/internal/core"
	"sunflow/internal/fabric"
	"sunflow/internal/obs"
	"sunflow/internal/obs/obshttp"
	"sunflow/internal/sim"
	"sunflow/internal/solstice"
	"sunflow/internal/trace"
)

func main() {
	traceFile := flag.String("trace", "-", "coflow-benchmark trace file (- for stdin)")
	coflowID := flag.Int("coflow", -1, "schedule only this Coflow (intra mode); -1 replays the whole trace")
	gbits := flag.Float64("b", 1, "link bandwidth in Gbit/s")
	delta := flag.Float64("delta", 0.01, "circuit reconfiguration delay in seconds")
	policyName := flag.String("policy", "scf", "inter-Coflow policy: scf (shortest first) or fifo")
	scheduler := flag.String("scheduler", "sunflow", "intra scheduler for -coflow mode: sunflow or solstice")
	verbose := flag.Bool("v", false, "print every reservation / completion")
	gantt := flag.Int("gantt", 0, "with -coflow: render the schedule as a Gantt chart this many columns wide")
	metrics := flag.Bool("metrics", false, "print the observability summary after the run")
	traceOut := flag.String("traceout", "", "write the JSONL simulation event trace to this file")
	httpAddr := flag.String("http", "", "serve live /metrics, /healthz, expvar and pprof on this address (e.g. :8080)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		// Bind synchronously so an unusable address fails the run up front
		// instead of erroring later from a goroutine (matching cmd/repro).
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("pprof: %w", err))
		}
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "sunflow: pprof: %v\n", err)
			}
		}()
	}

	var o *obs.Observer
	var sink *obs.JSONLSink
	if *metrics || *traceOut != "" || *httpAddr != "" {
		// The Sink interface must stay nil when no trace file is wanted; a
		// typed-nil *JSONLSink would read as trace-enabled.
		var s obs.Sink
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			sink = obs.NewJSONLSink(f)
			defer sink.Close()
			s = sink
		}
		o = obs.NewWith(obs.NewRegistry(), s)
	}
	if *httpAddr != "" {
		srv, err := obshttp.Serve(*httpAddr, o.Registry(), obshttp.Options{})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("[metrics listening on http://%s/metrics]\n", srv.Addr())
	}

	tr, err := readTrace(*traceFile)
	if err != nil {
		fatal(err)
	}
	linkBps := *gbits * 1e9

	if *coflowID >= 0 {
		err := intraMode(tr, *coflowID, linkBps, *delta, *scheduler, *verbose, *gantt, o)
		if err == nil {
			err = finishObs(o, sink, *metrics)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	var policy core.Policy
	switch *policyName {
	case "scf":
		policy = core.ShortestFirst{LinkBps: linkBps}
	case "fifo":
		policy = core.FIFO{}
	default:
		fatal(fmt.Errorf("unknown policy %q", *policyName))
	}

	res, err := sim.RunCircuit(tr.Coflows, sim.CircuitOptions{
		Ports:   tr.Ports,
		LinkBps: linkBps,
		Delta:   *delta,
		Policy:  policy,
		Obs:     o,
	})
	if err != nil {
		fatal(err)
	}

	ids := make([]int, 0, len(res.CCT))
	for id := range res.CCT {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sum float64
	for _, id := range ids {
		sum += res.CCT[id]
		if *verbose {
			fmt.Printf("coflow %-6d CCT %10.3fs  switches %d\n", id, res.CCT[id], res.SwitchCount[id])
		}
	}
	fmt.Printf("coflows %d  policy %s  B %.0f Gbps  delta %gs\n", len(ids), policy.Name(), *gbits, *delta)
	fmt.Printf("average CCT %.3fs\n", sum/float64(len(ids)))
	if err := finishObs(o, sink, *metrics); err != nil {
		fatal(err)
	}
}

// finishObs prints the metrics table and flushes the trace sink.
func finishObs(o *obs.Observer, sink *obs.JSONLSink, metrics bool) error {
	if metrics {
		fmt.Print(obs.FormatSummaries(o))
	}
	if sink != nil {
		return sink.Flush()
	}
	return nil
}

// intraMode schedules one Coflow alone and prints its reservations.
func intraMode(tr *trace.Trace, id int, linkBps, delta float64, scheduler string, verbose bool, gantt int, o *obs.Observer) error {
	var target *coflow.Coflow
	for _, c := range tr.Coflows {
		if c.ID == id {
			target = c
			break
		}
	}
	if target == nil {
		return fmt.Errorf("coflow %d not in trace", id)
	}
	tpl := target.PacketLowerBound(linkBps)
	tcl := target.CircuitLowerBound(linkBps, delta)
	fmt.Printf("%v\n", target)
	fmt.Printf("TpL %.3fs  TcL %.3fs\n", tpl, tcl)

	switch scheduler {
	case "sunflow":
		sched, err := core.IntraCoflow(core.NewPRT(tr.Ports), target, core.Options{LinkBps: linkBps, Delta: delta, Obs: o})
		if err != nil {
			return err
		}
		if verbose {
			for _, r := range sched.Reservations {
				fmt.Printf("  circuit [in.%d -> out.%d]  %.3fs .. %.3fs  (%.1f MB)\n",
					r.In, r.Out, r.Start, r.End, r.Bytes/1e6)
			}
		}
		fmt.Printf("sunflow: CCT %.3fs (%.2fx TcL)  switches %d\n",
			sched.Finish, sched.Finish/tcl, sched.SwitchingCount())
		if gantt > 0 {
			fmt.Print(core.Gantt(gantt, sched))
		}
	case "solstice":
		res, st, err := solstice.Run(target, tr.Ports, solstice.Options{LinkBps: linkBps, Delta: delta, Obs: o}, fabric.NotAllStop)
		if err != nil {
			return err
		}
		fmt.Printf("solstice: CCT %.3fs (%.2fx TcL)  switches %d  assignments %d\n",
			res.Finish, res.Finish/tcl, res.SwitchCount, st.Assignments)
	default:
		return fmt.Errorf("unknown scheduler %q", scheduler)
	}
	return nil
}

func readTrace(path string) (*trace.Trace, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return trace.Parse(r)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sunflow:", err)
	os.Exit(1)
}
