// Command sunflow-analyze inspects JSONL simulation traces written with
// -trace / -traceout: it reconstructs per-port circuit timelines, duty-cycle
// and δ-overhead accounting and per-Coflow CCT distributions, lints the
// trace's structural invariants, and renders SVG Gantt charts and an HTML
// report.
//
// Fault-injected runs (see docs/FAULTS.md) add port_down/port_up,
// circuit_retry and flow_stranded events; the linter checks two extra
// invariants over them: retry_delta (every failed setup attempt re-pays δ)
// and down_port_overlap (no circuit holds a port inside one of its outage
// intervals). Stranded Coflows are exempt from the must-complete lifecycle
// rule but may not also report a completion.
//
// Usage:
//
//	sunflow-analyze analyze [trace.jsonl]   text summary per scheduler scope
//	sunflow-analyze lint    [trace.jsonl]   check invariants; exit 1 on violations
//	sunflow-analyze gantt   [trace.jsonl]   SVG circuit timeline to -o
//	sunflow-analyze report  [trace.jsonl]   self-contained HTML report to -o
//	sunflow-analyze profile [trace.jsonl]   per-phase span table; -o adds a
//	                                        flamegraph-style SVG (see
//	                                        docs/OBSERVABILITY.md)
//
// With no file argument (or "-") the trace is read from stdin, so the tool
// pipes: go run ./cmd/sunflow -traceout /dev/stdout ... | sunflow-analyze lint
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sunflow/internal/obs"
	"sunflow/internal/obs/render"
	"sunflow/internal/obs/replay"
	"sunflow/internal/stats"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sunflow-analyze <analyze|lint|gantt|report|profile> [flags] [trace.jsonl]

subcommands:
  analyze   print per-scheduler duty cycle, δ overhead and CCT percentiles
  lint      check trace invariants, including the fault rules retry_delta
            and down_port_overlap and the span rules span_structure and
            span_containment; exits 1 when violations are found
  gantt     write an SVG per-port circuit timeline
  report    write a self-contained HTML report
  profile   print the per-phase span table (count/total/self/max and the
            critical path) from a trace recorded with -profile; with -o,
            also write a flamegraph-style SVG

flags:
`)
	flag.PrintDefaults()
}

func main() {
	out := flag.String("o", "", "output file for gantt/report (default stdout)")
	scope := flag.String("scope", "", "scheduler scope for gantt (default: first scope with circuits)")
	outPorts := flag.Bool("out-ports", false, "gantt: chart output ports instead of input ports")
	width := flag.Int("width", 0, "gantt: chart width in pixels")
	title := flag.String("title", "", "report/gantt title")
	flag.Usage = usage
	// Accept "sunflow-analyze <sub> [flags] [file]": carve the subcommand
	// off before flag parsing so flags may follow it.
	args := os.Args[1:]
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	sub := args[0]
	_ = flag.CommandLine.Parse(args[1:])

	events, err := readTrace(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	a := replay.Analyze(events)

	switch sub {
	case "analyze":
		printAnalysis(os.Stdout, a)
	case "lint":
		for _, v := range a.Violations {
			fmt.Fprintln(os.Stderr, v)
		}
		if n := len(a.Violations); n > 0 {
			fmt.Fprintf(os.Stderr, "sunflow-analyze: %d violation(s) in %d events\n", n, a.Events)
			os.Exit(1)
		}
		fmt.Printf("ok: %d events, %d scope(s), no violations\n", a.Events, len(a.Scopes))
	case "gantt":
		s := pickScope(a, *scope)
		if s == nil {
			fatal(fmt.Errorf("no scope with circuits in trace (scopes: %v)", a.ScopeNames()))
		}
		err = writeOut(*out, func(w io.Writer) error {
			return render.GanttSVG(w, s, render.GanttOptions{Width: *width, In: !*outPorts, Title: *title})
		})
	case "report":
		err = writeOut(*out, func(w io.Writer) error {
			return render.Report(w, a, *title)
		})
	case "profile":
		err = runProfile(a, *scope, *out, *width, *title)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sunflow-analyze:", err)
	os.Exit(1)
}

func readTrace(path string) ([]obs.Event, error) {
	if path == "" || path == "-" {
		return replay.ReadAll(os.Stdin)
	}
	return replay.ReadFile(path)
}

func pickScope(a *replay.Analysis, name string) *replay.Scope {
	if name != "" {
		return a.Scope(name)
	}
	for _, n := range a.ScopeNames() {
		if len(a.Scopes[n].Circuits) > 0 {
			return a.Scopes[n]
		}
	}
	return nil
}

func writeOut(path string, fn func(io.Writer) error) error {
	if path == "" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runProfile prints the per-phase span tables (one per scope carrying
// spans, or just the named scope) and, with -o, writes the first such
// scope's flamegraph SVG.
func runProfile(a *replay.Analysis, scope, out string, width int, title string) error {
	var scopes []*replay.Scope
	if scope != "" {
		s := a.Scope(scope)
		if s == nil || len(s.SpanRoots) == 0 {
			return fmt.Errorf("no spans in scope %q (scopes: %v)", scope, a.ScopeNames())
		}
		scopes = []*replay.Scope{s}
	} else {
		for _, n := range a.ScopeNames() {
			if s := a.Scopes[n]; len(s.SpanRoots) > 0 {
				scopes = append(scopes, s)
			}
		}
		if len(scopes) == 0 {
			return fmt.Errorf("trace has no span events — record one with repro -profile (scopes: %v)", a.ScopeNames())
		}
	}
	for i, s := range scopes {
		if i > 0 {
			fmt.Println()
		}
		if err := render.PhaseTable(os.Stdout, s); err != nil {
			return err
		}
		if cp := longestCriticalPath(s); len(cp) > 1 {
			fmt.Printf("  critical path:")
			for _, n := range cp {
				fmt.Printf("  %s(%.6fs)", n.Name, n.Dur)
			}
			fmt.Println()
		}
	}
	if out == "" {
		return nil
	}
	return writeOut(out, func(w io.Writer) error {
		return render.FlameSVG(w, scopes[0], render.FlameOptions{Width: width, Title: title})
	})
}

// longestCriticalPath is the heaviest-child chain of the scope's largest
// root span.
func longestCriticalPath(s *replay.Scope) []*replay.SpanNode {
	var top *replay.SpanNode
	for _, r := range s.SpanRoots {
		if top == nil || r.Dur > top.Dur {
			top = r
		}
	}
	return replay.CriticalPath(top)
}

func printAnalysis(w io.Writer, a *replay.Analysis) {
	fmt.Fprintf(w, "%d events, span %.6gs – %.6gs\n", a.Events, a.Start, a.End)
	for _, name := range a.ScopeNames() {
		s := a.Scopes[name]
		label := name
		if label == "" {
			label = "<root>"
		}
		fmt.Fprintf(w, "\n%s\n", label)
		if s.CircuitSetups > 0 {
			fmt.Fprintf(w, "  circuits: %d setups, %.6gs setup, %.6gs hold, duty %.4f, δ overhead %.4f\n",
				s.CircuitSetups, s.SetupSeconds, s.HoldSeconds, s.DutyCycle, s.DeltaOverhead())
		}
		if s.Windows > 0 {
			fmt.Fprintf(w, "  fair windows: %d\n", s.Windows)
		}
		if ccts := s.CCTs(); len(ccts) > 0 {
			fmt.Fprintf(w, "  coflows: %d   CCT mean %.6gs  p50 %.6gs  p95 %.6gs  max %.6gs\n",
				len(ccts), stats.Mean(ccts), stats.Percentile(ccts, 50),
				stats.Percentile(ccts, 95), stats.Max(ccts))
		}
	}
	if len(a.Violations) > 0 {
		fmt.Fprintf(w, "\nlint: %d violation(s) — run `sunflow-analyze lint` for detail\n", len(a.Violations))
	}
}
