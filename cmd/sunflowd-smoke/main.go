// Command sunflowd-smoke is the end-to-end crash-recovery smoke test for
// sunflowd (run via `make daemon-smoke`). It computes a reference schedule
// in-process, then drives a real sunflowd process through the same workload
// with a kill -9 in the middle:
//
//  1. stream the first half of a fixed-seed workload over the /v1 API,
//     waiting for each durable Ack;
//  2. SIGKILL the process (no drain, no final checkpoint);
//  3. restart it on the same data directory and assert the recovered state
//     digest is bit-identical to an in-process engine fed the same prefix;
//  4. stream the remaining events and assert the final digest and every
//     per-Coflow CCT match the uninterrupted reference exactly;
//  5. SIGTERM the process and assert it drains and exits 0, then restart
//     once more and assert recovery replays zero WAL events (the drain
//     checkpointed everything).
//
// Exit status 0 means every assertion held.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sunflow/internal/bench"
	"sunflow/internal/daemon"
	"sunflow/internal/trace"
)

// fabric parameters shared by the reference engine and the daemon flags.
const (
	smokePorts   = 16
	smokeGbps    = 100.0
	smokeDeltaMs = 10.0
)

func main() {
	bin := flag.String("bin", "bin/sunflowd", "path to the sunflowd binary under test")
	seed := flag.Int64("seed", 42, "workload seed")
	coflows := flag.Int("coflows", 24, "number of Coflows in the workload")
	flag.Parse()

	if err := run(*bin, *seed, *coflows); err != nil {
		fmt.Fprintf(os.Stderr, "sunflowd-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("sunflowd-smoke: PASS")
}

func run(bin string, seed int64, coflows int) error {
	events := workload(seed, coflows)
	mid := len(events) / 2

	// Uninterrupted reference: the same events through an in-process engine.
	refFull, err := reference(events)
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	refPrefix, err := reference(events[:mid])
	if err != nil {
		return fmt.Errorf("reference prefix: %w", err)
	}

	dataDir, err := os.MkdirTemp("", "sunflowd-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	// Phase 1: stream the first half, then kill -9.
	proc, err := startDaemon(bin, dataDir)
	if err != nil {
		return err
	}
	defer proc.kill()
	for i, ev := range events[:mid] {
		if _, err := proc.post(ev); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	fmt.Printf("[streamed %d/%d events; kill -9]\n", mid, len(events))
	if err := proc.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("kill: %w", err)
	}
	proc.cmd.Wait()

	// Phase 2: restart, verify recovery, stream the rest.
	proc, err = startDaemon(bin, dataDir)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer proc.kill()
	st, err := proc.status()
	if err != nil {
		return err
	}
	fmt.Printf("[recovered %d WAL events; digest %s]\n", st.Recovered, st.Digest)
	if st.Digest != refPrefix.Engine.Digest() {
		return fmt.Errorf("post-crash digest %s != reference prefix %s", st.Digest, refPrefix.Engine.Digest())
	}
	for i, ev := range events[mid:] {
		if _, err := proc.post(ev); err != nil {
			return fmt.Errorf("event %d: %w", mid+i, err)
		}
	}

	// Final state must match the uninterrupted reference bit-exactly.
	st, err = proc.status()
	if err != nil {
		return err
	}
	if st.Digest != refFull.Engine.Digest() {
		return fmt.Errorf("final digest %s != reference %s", st.Digest, refFull.Engine.Digest())
	}
	want := refFull.Engine.Completions()
	if st.Done != len(want) {
		return fmt.Errorf("done count %d != reference %d", st.Done, len(want))
	}
	for id, ref := range want {
		got, err := proc.completion(id)
		if err != nil {
			return fmt.Errorf("coflow %d: %w", id, err)
		}
		if got.CCT != ref.CCT || got.Finish != ref.Finish {
			return fmt.Errorf("coflow %d: CCT %v finish %v != reference CCT %v finish %v",
				id, got.CCT, got.Finish, ref.CCT, ref.Finish)
		}
	}
	fmt.Printf("[%d recovered CCTs match the uninterrupted reference]\n", len(want))

	// Phase 3: graceful drain, then prove the drain checkpointed everything.
	if err := proc.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("sigterm: %w", err)
	}
	if err := waitExit(proc.cmd, 30*time.Second); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	proc, err = startDaemon(bin, dataDir)
	if err != nil {
		return fmt.Errorf("post-drain restart: %w", err)
	}
	defer proc.kill()
	st, err = proc.status()
	if err != nil {
		return err
	}
	if st.Recovered != 0 {
		return fmt.Errorf("post-drain restart replayed %d WAL events, want 0 (drain must checkpoint)", st.Recovered)
	}
	if st.Digest != refFull.Engine.Digest() {
		return fmt.Errorf("post-drain digest %s != reference %s", st.Digest, refFull.Engine.Digest())
	}
	if err := proc.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("sigterm: %w", err)
	}
	return waitExit(proc.cmd, 30*time.Second)
}

// workload derives the fixed-seed event stream: registrations in arrival
// order plus a closing advance that drains every Coflow.
func workload(seed int64, coflows int) []daemon.Event {
	tr := trace.Generator{Ports: smokePorts, Coflows: coflows, HorizonSec: 20, MaxWidth: 6, Seed: seed}.Trace()
	var evs []daemon.Event
	for _, c := range tr.Coflows {
		flows := make([]daemon.FlowSpec, 0, len(c.Flows))
		for _, f := range c.Flows {
			flows = append(flows, daemon.FlowSpec{Src: f.Src, Dst: f.Dst, Bytes: f.Bytes})
		}
		evs = append(evs, daemon.Event{Kind: daemon.KindRegister, At: c.Arrival, Coflow: c.ID, Flows: flows})
	}
	evs = append(evs, daemon.Event{Kind: daemon.KindAdvance, At: 1e4})
	return evs
}

// refEngine wraps the in-process reference.
type refEngine struct{ Engine *daemon.Engine }

func reference(events []daemon.Event) (refEngine, error) {
	eng, err := daemon.NewEngine(engineConfig(), nil)
	if err != nil {
		return refEngine{}, err
	}
	for i, ev := range events {
		ev.Seq = uint64(i + 1)
		if _, err := eng.Apply(ev); err != nil {
			return refEngine{}, fmt.Errorf("event %d: %w", i, err)
		}
	}
	return refEngine{Engine: eng}, nil
}

func engineConfig() daemon.EngineConfig {
	return daemon.EngineConfig{
		Ports:   smokePorts,
		LinkBps: smokeGbps * bench.Gbps,
		Delta:   smokeDeltaMs / 1e3,
	}
}

// proc is one running sunflowd process plus its parsed listen address.
type proc struct {
	cmd  *exec.Cmd
	addr string
}

// startDaemon launches sunflowd on an ephemeral port, parses the listening
// banner for the bound address, and waits for readiness.
func startDaemon(bin, dataDir string) (*proc, error) {
	cmd := exec.Command(bin,
		"-data", dataDir,
		"-http", "127.0.0.1:0",
		"-ports", strconv.Itoa(smokePorts),
		"-gbps", fmt.Sprint(smokeGbps),
		"-delta-ms", fmt.Sprint(smokeDeltaMs),
		"-checkpoint-every", "7", // small so kill -9 lands between checkpoints
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(line, "[sunflowd listening on "); ok {
			addr = strings.TrimSuffix(rest, "]")
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("%s exited before printing its listen address", bin)
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go func() {
		io.Copy(io.Discard, stdout)
	}()
	p := &proc{cmd: cmd, addr: addr}
	if err := p.waitReady(10 * time.Second); err != nil {
		p.kill()
		return nil, err
	}
	return p, nil
}

func (p *proc) kill() {
	if p.cmd.ProcessState == nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

func (p *proc) waitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + p.addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s not ready after %s", p.addr, timeout)
}

func (p *proc) post(ev daemon.Event) (daemon.Ack, error) {
	body, err := json.Marshal(ev)
	if err != nil {
		return daemon.Ack{}, err
	}
	resp, err := http.Post("http://"+p.addr+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		return daemon.Ack{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return daemon.Ack{}, fmt.Errorf("POST /v1/events: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var ack daemon.Ack
	return ack, json.NewDecoder(resp.Body).Decode(&ack)
}

func (p *proc) status() (daemon.Status, error) {
	resp, err := http.Get("http://" + p.addr + "/v1/status")
	if err != nil {
		return daemon.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return daemon.Status{}, fmt.Errorf("GET /v1/status: %s", resp.Status)
	}
	var st daemon.Status
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func (p *proc) completion(id int) (daemon.Completion, error) {
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/coflows/%d", p.addr, id))
	if err != nil {
		return daemon.Completion{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return daemon.Completion{}, fmt.Errorf("GET /v1/coflows/%d: %s", id, resp.Status)
	}
	var view struct {
		State      string             `json:"state"`
		Completion *daemon.Completion `json:"completion"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return daemon.Completion{}, err
	}
	if view.State != "done" || view.Completion == nil {
		return daemon.Completion{}, fmt.Errorf("coflow %d not done (state %q)", id, view.State)
	}
	return *view.Completion, nil
}

// waitExit waits for the process to exit cleanly within the timeout.
func waitExit(cmd *exec.Cmd, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("exited with %w, want 0", err)
		}
		return nil
	case <-time.After(timeout):
		cmd.Process.Kill()
		return fmt.Errorf("did not exit within %s", timeout)
	}
}
