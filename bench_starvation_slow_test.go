//go:build slowbench

package sunflow

import (
	"testing"

	"sunflow/internal/bench"
)

// BenchmarkStarvationAvoidance at the full experiment scale (the 4 GB hog
// and 40-Coflow overhead workload of cmd/repro). The default build runs a
// reduced-scale variant under the same name; compare across builds with
// care — the two populations are deliberately different sizes.
func BenchmarkStarvationAvoidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Starvation(bench.Config{Seed: 1}, FairWindows{N: 4, T: 0.5, Tau: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}
