// Benchmarks regenerating every table and figure of the paper's evaluation
// at a reduced but structurally faithful scale (run cmd/repro for the
// full-scale numbers recorded in EXPERIMENTS.md), plus micro-benchmarks of
// the schedulers themselves.
//
// One benchmark per experiment:
//
//	go test -bench=. -benchmem
package sunflow

import (
	"math/rand"
	"os"
	"testing"

	"sunflow/internal/aalo"
	"sunflow/internal/bench"
	"sunflow/internal/bvn"
	"sunflow/internal/core"
	"sunflow/internal/daemon"
	"sunflow/internal/fabric"
	"sunflow/internal/matching"
	"sunflow/internal/matrix"
	"sunflow/internal/procstat"
	"sunflow/internal/sim"
	"sunflow/internal/solstice"
	"sunflow/internal/trace"
	"sunflow/internal/varys"
)

// benchCfg is the reduced-scale workload used by the figure benchmarks.
var benchCfg = bench.Config{Seed: 1, Ports: 40, Coflows: 80, MaxWidth: 10}

func BenchmarkTable3_SchedulerCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(bench.Config{Seed: 1}, []int{8, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4_Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table4(benchCfg)
	}
}

func BenchmarkFig3_IntraCCTvsTcL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig3(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_M2MRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig4(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_SwitchingCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_IntraDeltaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig6(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_CCTvsTpL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_InterAvgCCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8(benchCfg, []float64{bench.Gbps}, []float64{0.40}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_CCTDifference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig9(benchCfg, 0.40); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_InterDeltaSweep(b *testing.B) {
	cfg := bench.Config{Seed: 1, Ports: 30, Coflows: 40, MaxWidth: 8}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselines_TMSEdmond(b *testing.B) {
	cfg := bench.Config{Seed: 1, Ports: 20, Coflows: 40, MaxWidth: 5}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Baselines(cfg, 10, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOrderingSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.OrderingSensitivity(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_AllStop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AllStopAblation(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_Combining(b *testing.B) {
	cfg := bench.Config{Seed: 1, Ports: 20, Coflows: 30, MaxWidth: 5}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Combining(cfg, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- scheduler micro-benchmarks ---

// benchShuffle builds a w×w shuffle on 2w ports.
func benchShuffle(w int, seed int64) *Coflow {
	rng := rand.New(rand.NewSource(seed))
	var flows []Flow
	for i := 0; i < w; i++ {
		for j := 0; j < w; j++ {
			flows = append(flows, Flow{Src: i, Dst: w + j, Bytes: float64(1+rng.Intn(64)) * 1e6})
		}
	}
	return NewCoflow(1, 0, flows)
}

func BenchmarkSunflowIntra_Shuffle16(b *testing.B) {
	c := benchShuffle(16, 7)
	opts := Options{LinkBps: 1e9, Delta: 0.01}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.IntraCoflow(core.NewPRT(32), c, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSunflowIntra_Shuffle40(b *testing.B) {
	c := benchShuffle(40, 7)
	opts := Options{LinkBps: 1e9, Delta: 0.01}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.IntraCoflow(core.NewPRT(80), c, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSunflowIntra_Shuffle40_Reference(b *testing.B) {
	c := benchShuffle(40, 7)
	opts := Options{LinkBps: 1e9, Delta: 0.01, Reference: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.IntraCoflow(core.NewPRT(80), c, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFacebook150 is the full-scale inter-Coflow pass: the 526-Coflow
// Facebook-derived trace on a 150-port fabric, priority-ordered shortest
// first — the workload whose planning cost the indexed PRT and horizon
// compaction target.
func benchFacebook150() []*Coflow {
	cs := bench.Config{Seed: 1, Ports: 150}.Workload()
	return core.ShortestFirst{LinkBps: 1e9}.Sort(cs)
}

func BenchmarkSunflowInter_Facebook150(b *testing.B) {
	ordered := benchFacebook150()
	opts := Options{LinkBps: 1e9, Delta: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.InterCoflow(core.NewPRT(150), ordered, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSunflowInter_Facebook150_Reference(b *testing.B) {
	ordered := benchFacebook150()
	opts := Options{LinkBps: 1e9, Delta: 0.01, Reference: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.InterCoflow(core.NewPRT(150), ordered, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDenseTrace is the arrival-dense, port-sparse workload the incremental
// replanner targets: many narrow Coflows live at once on a wide fabric, so
// most port contexts survive a scheduling pass intact and the plan cache
// absorbs the bulk of the would-be intra invocations (the sim package's
// TestIncrementalSkipsDominateDenseWorkload pins the ≥3× reduction).
func benchDenseTrace() *trace.Trace {
	return trace.Generator{Ports: 48, Coflows: 200, HorizonSec: 5, MaxWidth: 4, Seed: 1}.Trace()
}

// BenchmarkSunflowInter_Dense measures the end-to-end circuit simulator on
// the dense workload with dirty-prefix schedule reuse enabled (the default);
// its _FullReplan twin is the same run with the cache disabled, so the pair's
// ns/op ratio is the optimization's wall-clock win.
func BenchmarkSunflowInter_Dense(b *testing.B) {
	tr := benchDenseTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunCircuit(tr.Coflows, sim.CircuitOptions{Ports: tr.Ports, LinkBps: 1e9, Delta: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSunflowInter_Dense_FullReplan(b *testing.B) {
	tr := benchDenseTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunCircuit(tr.Coflows, sim.CircuitOptions{Ports: tr.Ports, LinkBps: 1e9, Delta: 0.01, FullReplan: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEvent drives the daemon scheduling engine through the dense
// workload as an online event stream — register each Coflow at its arrival,
// advance between arrivals, then drain — measuring the per-stream cost of
// the engine's replan-per-event discipline with schedule reuse enabled.
func BenchmarkEngineEvent(b *testing.B) {
	tr := benchDenseTrace()
	evs := make([]daemon.Event, 0, 2*len(tr.Coflows)+2)
	for _, c := range tr.Coflows {
		flows := make([]daemon.FlowSpec, 0, len(c.Flows))
		for _, f := range c.Flows {
			flows = append(flows, daemon.FlowSpec{Src: f.Src, Dst: f.Dst, Bytes: f.Bytes})
		}
		evs = append(evs, daemon.Event{Kind: daemon.KindRegister, At: c.Arrival, Coflow: c.ID, Flows: flows})
	}
	last := tr.Coflows[len(tr.Coflows)-1].Arrival
	evs = append(evs,
		daemon.Event{Kind: daemon.KindAdvance, At: last + 500},
		daemon.Event{Kind: daemon.KindAdvance, At: last + 1000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := daemon.NewEngine(daemon.EngineConfig{Ports: tr.Ports, LinkBps: 1e9, Delta: 0.01}, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, ev := range evs {
			if _, err := eng.Apply(ev); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Events per op, for the per-event view of the same number.
	b.ReportMetric(float64(len(evs)), "events/op")
}

// BenchmarkSunflowInter_100k is the scale gate: a 100k-Coflow workload at
// the Facebook trace's arrival density, streamed straight from the generator
// through the bounded-memory archive-mode simulator — no job slice, no
// retained Result maps. Resident memory tracks peak concurrent Coflows, not
// the trace length; the reported MB-rss and coflows/s feed the benchci
// -gate-rss and throughput columns (run it alone for a meaningful RSS, as
// make scale-smoke does). One iteration simulates for minutes, so the
// benchmark only runs when SUNFLOW_SCALE=1 — the scale-bench CI job sets it;
// the ordinary bench runs skip it.
func BenchmarkSunflowInter_100k(b *testing.B) {
	if os.Getenv("SUNFLOW_SCALE") == "" {
		b.Skip("set SUNFLOW_SCALE=1 to run the multi-minute 100k-Coflow scale benchmark")
	}
	const n = 100_000
	// Keep the paper trace's arrival density: the concurrency level — and
	// with it the live set the memory bound tracks — stays at Facebook-trace
	// scale while the total Coflow count grows 190×.
	horizon := float64(n) / 526 * 3600
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := trace.Generator{Seed: 1, Coflows: n, HorizonSec: horizon}
		var dig sim.ArchiveDigest
		res, err := sim.RunCircuitSource(g.Stream().Coflows(), sim.CircuitOptions{
			Ports:     150,
			LinkBps:   1e9,
			Delta:     0.01,
			OnArchive: dig.Add,
		})
		if err != nil {
			b.Fatal(err)
		}
		if dig.Count() != n || res.Partial.Degraded() {
			b.Fatalf("archived %d of %d coflows (degraded=%v)", dig.Count(), n, res.Partial.Degraded())
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "coflows/s")
	b.ReportMetric(procstat.PeakRSSMB(), "MB-rss")
}

// benchPRTLoad describes a 1k-reservation table: sequential back-to-back
// circuits round-robined over the port pairs, the shape an inter pass leaves
// behind.
func benchPRTLoad(ports, n int) []Reservation {
	rs := make([]Reservation, 0, n)
	for k := 0; k < n; k++ {
		i, j := k%ports, (k*7+3)%ports
		start := float64(k/ports) * 0.1
		rs = append(rs, Reservation{
			CoflowID: k, In: i, Out: j,
			Start: start, End: start + 0.09, Setup: 0.01,
		})
	}
	return rs
}

func BenchmarkPRT_Preload1k(b *testing.B) {
	rs := benchPRTLoad(64, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := core.NewPRT(64)
		for _, r := range rs {
			if err := p.TryReserve(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPRT_ReleasesAfter1k(b *testing.B) {
	rs := benchPRTLoad(64, 1000)
	p := core.NewPRT(64)
	for _, r := range rs {
		if err := p.TryReserve(r); err != nil {
			b.Fatal(err)
		}
	}
	ins := []int{0, 1, 2, 3}
	outs := []int{3, 4, 5, 6}
	var dst []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := 0; q < 100; q++ {
			dst = p.ReleasesAfter(float64(q)*0.015, ins, outs, dst[:0])
		}
	}
}

func BenchmarkPRT_Compact1k(b *testing.B) {
	rs := benchPRTLoad(64, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := core.NewPRT(64)
		for _, r := range rs {
			if err := p.TryReserve(r); err != nil {
				b.Fatal(err)
			}
		}
		// Sweep the horizon forward the way an inter pass does, probing the
		// live window after each advance.
		for h := 0.0; h < 1.7; h += 0.1 {
			p.CompactBefore(h)
			for q := 0; q < 32; q++ {
				p.FreeAt(q%64, (q*7+3)%64, h+0.05)
			}
		}
	}
}

func BenchmarkSolstice_Shuffle16(b *testing.B) {
	c := benchShuffle(16, 7)
	opts := solstice.Options{LinkBps: 1e9, Delta: 0.01}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := solstice.Schedule(c, 32, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCircuitSim_80Coflows(b *testing.B) {
	cs := benchCfg.Workload()
	opts := sim.CircuitOptions{Ports: 40, LinkBps: 1e9, Delta: 0.01}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunCircuit(cs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVarysSim_80Coflows(b *testing.B) {
	cs := benchCfg.Workload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunPacket(cs, 40, 1e9, varys.Allocator{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAaloSim_80Coflows(b *testing.B) {
	cs := benchCfg.Workload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunPacket(cs, 40, 1e9, aalo.Allocator{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxMinFair_1kFlows(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	flows := make([]fabric.FlowKey, 1000)
	for i := range flows {
		flows[i] = fabric.FlowKey{Src: rng.Intn(50), Dst: rng.Intn(50)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		availIn := make([]float64, 50)
		availOut := make([]float64, 50)
		for p := 0; p < 50; p++ {
			availIn[p], availOut[p] = 1e9, 1e9
		}
		fabric.MaxMinFair(flows, availIn, availOut)
	}
}

// --- 150-port kernel micro-benchmarks ---
//
// These pin the combinatorial kernels at the paper's full fabric scale; the
// figure benchmarks above exercise the same code only at reduced port
// counts, so kernel regressions hide inside their noise.

// benchDemand150 is the widest Coflow of the 150-port Facebook-derived
// workload as a processing-time matrix — the realistic sparse shape the
// schedulers feed the stuffing and matching kernels.
func benchDemand150() [][]float64 {
	cs := bench.Config{Seed: 1, Ports: 150}.Workload()
	widest := cs[0]
	for _, c := range cs {
		if len(c.Flows) > len(widest.Flows) {
			widest = c
		}
	}
	m := widest.DemandMatrix(150)
	for i := range m {
		for j := range m[i] {
			m[i][j] = m[i][j] * 8 / 1e9
		}
	}
	return m
}

func BenchmarkSolstice_Facebook150(b *testing.B) {
	cs := bench.Config{Seed: 1, Ports: 150}.Workload()
	widest := cs[0]
	for _, c := range cs {
		if len(c.Flows) > len(widest.Flows) {
			widest = c
		}
	}
	opts := solstice.Options{LinkBps: 1e9, Delta: 0.01}
	st := solstice.NewStuffer(150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Schedule(widest, 150, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBvN_Dense150(b *testing.B) {
	stuffed, _ := bvn.Stuff(benchDemand150())
	dec := bvn.NewDecomposer(150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decompose(stuffed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHopcroftKarp_Bitset150(b *testing.B) {
	m := benchDemand150()
	s := matching.NewScratch(150)
	var match []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AdjacencyAbove(m, 1e-9)
		match, _ = s.MaxMatching(match)
	}
	_ = match
}

func BenchmarkMaxMinFair_10kFlows(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	flows := make([]fabric.FlowKey, 10000)
	for i := range flows {
		flows[i] = fabric.FlowKey{Src: rng.Intn(150), Dst: rng.Intn(150)}
	}
	availIn := make([]float64, 150)
	availOut := make([]float64, 150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < 150; p++ {
			availIn[p], availOut[p] = 1e9, 1e9
		}
		fabric.MaxMinFair(flows, availIn, availOut)
	}
}

// BenchmarkMatrixSmoke runs the committed CI smoke spec through the
// experiment-matrix engine end to end (expansion, replicated simulator
// runs, t/bootstrap aggregation, digests) — the cost CI's matrix-smoke job
// pays twice per run, gated like every other benchmark.
func BenchmarkMatrixSmoke(b *testing.B) {
	spec, err := matrix.LoadSpec("examples/matrix/smoke.json")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.Run(spec, matrix.Options{Workers: -1}); err != nil {
			b.Fatal(err)
		}
	}
}
