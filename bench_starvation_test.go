//go:build !slowbench

package sunflow

import (
	"testing"

	"sunflow/internal/bench"
)

// BenchmarkStarvationAvoidance runs the §4.2 starvation experiment at a
// reduced scale (a 4 s hog transfer and a 10-Coflow overhead workload) so
// the default benchmark suite stays fast; build with -tags slowbench for the
// full-scale experiment under the same benchmark name.
func BenchmarkStarvationAvoidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.StarvationSized(bench.Config{Seed: 1}, FairWindows{N: 4, T: 0.5, Tau: 0.05}, 5e8, 10); err != nil {
			b.Fatal(err)
		}
	}
}
